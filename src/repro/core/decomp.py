"""ARB-NUCLEUS-DECOMP: the paper's parallel (r,s) nucleus decomposition.

Algorithm 2, with every Section 5 optimization available through
:class:`~repro.core.config.NucleusConfig`:

1. orient the graph with an O(alpha)-orientation (optionally relabeling
   vertices by rank, Section 5.4);
2. enumerate all r-cliques and build the clique table ``T``
   (one/two/multi-level, Sections 5.1--5.3);
3. count the s-cliques incident on every r-clique with REC-LIST-CLIQUES
   (``COUNT-FUNC`` increments C(s,r) cells per discovered s-clique);
4. bucket r-cliques by count and peel: each round extracts the minimum
   bucket ``A``, re-discovers the s-cliques incident to each peeled
   r-clique, and applies ``UPDATE-FUNC`` --- subtracting ``1/a`` per
   discovery so simultaneously-peeled r-cliques never over-count --- while
   aggregating the updated set ``U`` (Section 5.5) to re-bucket.

The bucket value at extraction is the r-clique's (r,s)-clique-core number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from math import comb

import numpy as np

from ..bucketing import make_bucketing
from ..cliques.batchlist import batch_count_phase, batch_list_cliques
from ..cliques.listing import list_cliques, rec_list_cliques
from ..cliques.orient import orientation_rank
from ..graph.contraction import ContractionManager, WorkingGraph
from ..graph.csr import CSRGraph, DirectedGraph
from ..graph.relabel import relabel_by_rank
from ..machine.cache import AddressSpace
from ..parallel.atomics import ContentionMeter
from ..parallel.primitives import intersect_many
from ..parallel.runtime import CostTracker, _log2
from ..sanitize.racecheck import maybe_shadow
from .aggregation import make_aggregator
from .batchpeel import peel_batch
from .config import NucleusConfig
from .tables import CliqueTable

_ALIVE, _PEELING, _PEELED = 0, 1, 2


@dataclass
class NucleusResult:
    """Output of one nucleus decomposition run.

    ``core_of`` / ``as_dict`` report cliques in *original* vertex ids
    (ascending within each clique), regardless of relabeling.
    """

    r: int
    s: int
    n_r_cliques: int
    n_s_cliques: int
    rho: int  # peeling rounds (the paper's rho_{(r,s)})
    max_core: int
    table_memory_units: int
    tracker: CostTracker
    config: NucleusConfig
    #: Per-round trace: (core level, r-cliques peeled, r-cliques updated).
    round_log: list[tuple[int, int, int]] = field(default_factory=list)
    _cells: np.ndarray = field(repr=False, default=None)
    _cores: np.ndarray = field(repr=False, default=None)
    _table: CliqueTable = field(repr=False, default=None)
    _original_of: np.ndarray = field(repr=False, default=None)

    def as_dict(self) -> dict[tuple[int, ...], int]:
        """Map every r-clique to its (r,s)-clique-core number."""
        out = {}
        for cell, core in zip(self._cells, self._cores):
            clique = self._table.decode(int(cell))
            original = tuple(sorted(int(self._original_of[v]) for v in clique))
            out[original] = int(core)
        return out

    def core_of(self, clique) -> int:
        """Core number of one r-clique given in original vertex ids."""
        rank = np.empty_like(self._original_of)
        rank[self._original_of] = np.arange(self._original_of.size)
        working = tuple(sorted(int(rank[v]) for v in clique))
        cell = self._table.cell_of(working)
        if cell < 0:
            raise KeyError(f"{tuple(clique)} is not an {self.r}-clique")
        position = np.searchsorted(self._cells, cell)
        return int(self._cores[position])

    def core_histogram(self) -> dict[int, int]:
        """Number of r-cliques at each core value."""
        values, counts = np.unique(self._cores, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}


@dataclass
class PreparedDecomposition:
    """Phases 1--3 of ARB-NUCLEUS-DECOMP, packaged for a peeling driver.

    Both the single-node driver (:func:`arb_nucleus_decomp`) and the
    sharded multi-node driver
    (:func:`repro.distributed.peel.sharded_nucleus_decomp`) consume this:
    the oriented graph, the populated clique table with its s-clique
    counts, and the bookkeeping needed to report results in original
    vertex ids.  All charges land on :attr:`tracker` in the same phases
    (``orient`` / ``relabel`` / ``enumerate_r`` / ``build_table`` /
    ``count_s``) and the same order as before the extraction, so the
    pinned bench trajectory is unchanged.
    """

    config: NucleusConfig
    tracker: CostTracker
    work_graph: CSRGraph
    dg: DirectedGraph
    original_of: np.ndarray
    table: CliqueTable
    n_r: int
    n_s: int
    #: The listing engine actually used (falls back to ``"scalar"`` when a
    #: race detector is attached; peeling drivers should honor the same
    #: choice for their UPDATE completions).
    listing_engine: str


def prepare_decomposition(graph: CSRGraph, r: int, s: int,
                          config: NucleusConfig | None = None,
                          tracker: CostTracker | None = None
                          ) -> PreparedDecomposition:
    """Run phases 1--3 (orient, enumerate r-cliques + build T, count
    s-cliques) and return the shared state every peeling driver needs."""
    if config is None:
        config = NucleusConfig.optimal(r, s)
    config = config.validated(graph.n, r, s)
    if tracker is None:
        tracker = CostTracker()

    # -- Phase 1: orientation (Algorithm 2, line 20) and relabeling (5.4).
    with tracker.phase("orient"):
        rank = orientation_rank(graph, config.orientation, tracker)
    if config.relabel:
        with tracker.phase("relabel"):
            work_graph, original_of = relabel_by_rank(graph, rank, tracker)
            work_rank = np.arange(graph.n)
    else:
        work_graph = graph
        original_of = np.arange(graph.n)
        work_rank = rank
    dg = DirectedGraph.orient(work_graph, work_rank)

    # The frontier listing engine charges identical simulated costs but
    # bypasses the per-task shadow logging the race detector needs; fall
    # back to the oracle recursion when one is attached (same rule as the
    # peeling engine).
    listing_engine = config.listing_engine
    if listing_engine == "batch" and tracker.race_detector is not None:
        listing_engine = "scalar"

    # -- Phase 2: enumerate r-cliques and build T (line 21).
    with tracker.phase("enumerate_r"):
        if r == 1:
            n_r = graph.n
            cliques = np.arange(graph.n, dtype=np.int64)[:, np.newaxis]
        elif listing_engine == "batch":
            blocks: list[np.ndarray] = []
            n_r = batch_list_cliques(dg, r, tracker, sink=blocks.append)
            cliques = np.concatenate(blocks, axis=0)
        else:
            rows: list[tuple] = []
            n_r = list_cliques(dg, r, rows.append, tracker)
            cliques = np.asarray(rows, dtype=np.int64).reshape(n_r, r)
        cliques = cliques.reshape(n_r, r)
        if not config.relabel and n_r:
            # Discovery order is rank order; keys need ascending ids.
            tracker.add_work(n_r * r * _log2(r))
            cliques = np.sort(cliques, axis=1)
    with tracker.phase("build_table"):
        table = CliqueTable(
            work_graph.n, r, cliques, levels=config.levels,
            style=config.table_style, contiguous=config.contiguous,
            inverse_map=config.inverse_map, tracker=tracker,
            address_space=AddressSpace())

    if n_r == 0:
        return PreparedDecomposition(config, tracker, work_graph, dg,
                                     original_of, table, 0, 0,
                                     listing_engine)

    # -- Phase 3: count s-cliques per r-clique (COUNT-FUNC, line 22).
    relabeled = config.relabel
    with tracker.phase("count_s"):
        if listing_engine == "batch":
            n_s = batch_count_phase(dg, table, r, s, relabeled, tracker)
        else:
            n_s = _count_scalar(dg, table, r, s, relabeled, tracker)
    return PreparedDecomposition(config, tracker, work_graph, dg,
                                 original_of, table, n_r, n_s,
                                 listing_engine)


def arb_nucleus_decomp(graph: CSRGraph, r: int, s: int,
                       config: NucleusConfig | None = None,
                       tracker: CostTracker | None = None) -> NucleusResult:
    """Compute the (r, s) nucleus decomposition of ``graph``.

    Parameters
    ----------
    graph:
        The undirected input graph.
    r, s:
        Nucleus parameters, ``1 <= r < s``; (1,2) is k-core, (2,3) k-truss.
    config:
        Optimization knobs; defaults to :meth:`NucleusConfig.optimal`.
    tracker:
        Optional cost tracker (a fresh one is created otherwise); attach a
        cache simulator to it *before* calling to model cache behavior.
    """
    prep = prepare_decomposition(graph, r, s, config, tracker)
    config, tracker = prep.config, prep.tracker
    work_graph, dg, table = prep.work_graph, prep.dg, prep.table
    original_of, n_r, n_s = prep.original_of, prep.n_r, prep.n_s

    if n_r == 0:
        return NucleusResult(r, s, 0, 0, 0, 0, table.memory_units, tracker,
                             config, [], np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64), table, original_of)

    # -- Phase 4: bucket and peel (lines 23-29).
    cells = table.occupied_cells()
    counts0 = np.rint(table.counts[cells]).astype(np.int64)
    with tracker.phase("bucket"):
        buckets = make_bucketing(config.bucketing, cells, counts0,
                                 tracker=tracker, window=config.bucket_window)
    # Shared peeling state.  Under race checking (repro.sanitize) the
    # arrays are shadow-wrapped: ``status``/``cores`` are written only at
    # round barriers and read inside tasks (plain accesses), while the
    # first-touch stamp ``last_round`` is test-and-set state that the real
    # implementation mediates with a CAS, hence ``atomic=True``.
    status = maybe_shadow(np.zeros(table.total_cells, dtype=np.int8),
                          tracker, label="status")
    last_round = maybe_shadow(np.full(table.total_cells, -1, dtype=np.int64),
                              tracker, atomic=True, label="last_round")
    cores = maybe_shadow(np.zeros(table.total_cells, dtype=np.int64),
                         tracker, label="cores")
    meter = ContentionMeter(detector=tracker.race_detector)
    aggregator = make_aggregator(
        config.aggregation, table.total_cells, threads=config.threads,
        tracker=tracker, meter=meter, buffer_size=config.buffer_size)

    working = WorkingGraph(work_graph)
    contraction = None
    if config.contraction and (r, s) == (2, 3):
        contraction = ContractionManager(working, tracker)

    fractional = config.update_arithmetic == "fractional"
    engine = config.engine
    if engine == "batch" and tracker.race_detector is not None:
        # The race detector relies on per-task shadow-array accesses that
        # only the scalar loop performs; fall back to the oracle.
        engine = "scalar"

    with tracker.phase("peel"):
        if engine == "batch":
            rho, max_core, round_log = peel_batch(
                graph=graph, dg=dg, working=working, table=table,
                buckets=buckets, aggregator=aggregator, meter=meter,
                status=status, last_round=last_round, cores=cores,
                contraction=contraction, config=config, tracker=tracker,
                n_r=n_r, r=r, s=s, fractional=fractional)
        else:
            rho, max_core, round_log = _peel_scalar(
                graph, dg, working, table, buckets, aggregator, meter,
                status, last_round, cores, contraction, config, tracker,
                n_r, r, s, fractional)

    table.tracker = None  # post-run queries should not keep charging
    order = np.argsort(cells, kind="stable")
    return NucleusResult(
        r=r, s=s, n_r_cliques=n_r, n_s_cliques=n_s, rho=rho,
        max_core=max_core, table_memory_units=table.memory_units,
        tracker=tracker, config=config, round_log=round_log,
        _cells=cells[order], _cores=cores[cells[order]], _table=table,
        _original_of=original_of)


def _count_scalar(dg, table, r: int, s: int, relabeled: bool,
                  tracker) -> int:
    """Algorithm 2's s-clique count (COUNT-FUNC, line 22), one clique at a
    time --- the scalar oracle whose charges
    :func:`repro.cliques.batchlist.batch_count_phase` replays in bulk."""
    sort_charge = s * _log2(s)

    def count_func(clique):
        if relabeled:
            ordered = clique
        else:
            ordered = tuple(sorted(clique))
            # Charge the sort only when one actually happens: without
            # relabeling, discovery order often *is* ascending-id order
            # (e.g. when orientation rank coincides with vertex id), and
            # sorted() on a sorted tuple is a linear verification already
            # covered by the per-clique work below.
            if ordered != clique:
                tracker.add_work(sort_charge)
        for subset in combinations(ordered, r):
            table.add_count(subset, 1.0)

    return list_cliques(dg, s, count_func, tracker)


def _peel_scalar(graph, dg, working, table, buckets, aggregator, meter,
                 status, last_round, cores, contraction, config,
                 tracker: CostTracker, n_r: int, r: int, s: int,
                 fractional: bool) -> tuple[int, int, list]:
    """The per-clique peeling loop (Algorithm 2, lines 23-29).

    This is the oracle the batch engine (:mod:`repro.core.batchpeel`) must
    match cost-for-cost; keep the two in lockstep when changing charges.
    """
    subsets_per_s = comb(s, r)
    finished = 0
    rho = 0
    round_id = 0
    max_core = 0
    round_log: list[tuple[int, int, int]] = []

    while finished < n_r:
        level, peel_cells = buckets.next_bucket()
        rho += 1
        tracker.add_round()
        max_core = max(max_core, level)
        cores[peel_cells] = level
        status[peel_cells] = _PEELING
        finished += peel_cells.size
        estimate = int(peel_cells.size) * max(1, level) * \
            max(1, subsets_per_s - 1)
        aggregator.begin_round(int(peel_cells.size), estimate)

        with tracker.parallel(int(peel_cells.size)) as region:
            for task, cell in enumerate(peel_cells):
                thread = task % config.threads
                with region.task():
                    clique = table.decode(int(cell))
                    _update_one(table, dg, working, clique, r, s, status,
                                last_round, round_id, aggregator, thread,
                                fractional, tracker)
                    # One O(log n) intersection per completion level.
                    tracker.add_span(_log2(graph.n) * (s - r + 1))

        meter.settle(tracker)
        updated = aggregator.finish_round()
        round_log.append((level, int(peel_cells.size), int(updated.size)))
        status[peel_cells] = _PEELED
        if updated.size:
            new_values = np.rint(table.counts[updated]).astype(np.int64)
            buckets.update(updated, new_values)
        if contraction is not None:
            for cell in peel_cells:
                u, v = table.decode(int(cell))
                contraction.note_peeled_edge(u, v)
            contraction.maybe_contract(
                lambda a, b: status[table.cell_of(
                    (a, b) if a < b else (b, a))] != _PEELED)
        round_id += 1
    return rho, max_core, round_log


def _update_one(table: CliqueTable, dg: DirectedGraph, working: WorkingGraph,
                clique: tuple, r: int, s: int, status: np.ndarray,
                last_round: np.ndarray, round_id: int, aggregator,
                thread: int, fractional: bool,
                tracker: CostTracker) -> None:
    """UPDATE for one peeled r-clique (Algorithm 2, lines 13-18)."""
    if r == 1:
        candidates = working.neighbors(clique[0])
        tracker.add_work(1.0)
    else:
        candidates = intersect_many(
            [working.neighbors(v) for v in clique], tracker)
    if candidates.size < s - r:
        return

    def update_func(s_clique):
        _update_func(table, s_clique, r, status, last_round, round_id,
                     aggregator, thread, fractional, tracker)

    rec_list_cliques(dg, candidates, s - r, clique, update_func, tracker)


def _update_func(table: CliqueTable, s_clique: tuple, r: int,
                 status: np.ndarray, last_round: np.ndarray, round_id: int,
                 aggregator, thread: int, fractional: bool,
                 tracker: CostTracker) -> None:
    """UPDATE-FUNC (Algorithm 2, lines 5-12) for one discovered s-clique."""
    ordered = tuple(sorted(s_clique))
    tracker.add_work(float(len(s_clique)))
    alive_cells = []
    peeling = []
    for subset in combinations(ordered, r):
        cell = table.cell_of(subset)
        state = status[cell]
        if state == _PEELED:
            return  # an r-clique of this s-clique was peeled earlier
        if state == _PEELING:
            peeling.append(subset)
        else:
            alive_cells.append(cell)
    if not alive_cells:
        return
    a = len(peeling)
    if fractional:
        delta = -1.0 / a
    else:
        # Exact-integer mode: only the least peeling subset subtracts 1;
        # the recursion passes the peeled r-clique as the s-clique's prefix.
        if tuple(sorted(s_clique[:r])) != min(peeling):
            return
        delta = -1.0
    # PAR010 waiver: the fractional delta (-1/a) makes the atomic
    # accumulation order-dependent in float arithmetic, but every consumer
    # re-rounds (np.rint at the bucket update and at result extraction), and
    # the fractional-vs-exact agreement gate in tests/test_decomp.py pins
    # the re-rounded totals; interleaving noise cannot reach a reported
    # number.
    for cell in alive_cells:
        table.add_count_at(cell, delta)  # parlint: disable=PAR010
        if last_round[cell] != round_id:
            last_round[cell] = round_id
            aggregator.record(int(cell), thread)
