"""k-clique densest subgraph via nucleus peeling.

Section 2 notes that the k-clique densest subgraph problem (Tsourakakis,
WWW 2015) admits efficient parallel peeling algorithms through the same
machinery [60].  The standard 1/k-approximation falls straight out of the
(1, k) nucleus decomposition: peel vertices by incident k-clique count and
return the suffix of the peeling order maximizing k-clique density
(k-cliques per vertex).

This module implements that peeling-based approximation, exercising the
(1, s) path of ARB-NUCLEUS-DECOMP on a second real problem.  The suffix
scan is fully charged: every candidate threshold pays for building its
induced subgraph, re-orienting it, and re-listing its k-cliques on the
same tracker as the peel (the re-listing used to run off the books,
understating the scan phase by its entire cost).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..cliques.listing import count_cliques
from ..cliques.orient import orient
from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker, _log2
from .config import NucleusConfig
from .decomp import arb_nucleus_decomp


@dataclass
class DensestResult:
    """Output of the k-clique densest subgraph approximation."""

    k: int
    vertices: list[int]
    density: float  # k-cliques per vertex inside the chosen subgraph
    clique_count: int


def k_clique_densest(graph: CSRGraph, k: int,
                     tracker: CostTracker | None = None,
                     engine: str = "scalar",
                     listing_engine: str | None = None) -> DensestResult:
    """A peeling (1/k-approximate) k-clique densest subgraph.

    Peels vertices in (1,k)-nucleus order; among the suffixes of that
    order, returns the one with the highest k-clique density.  ``engine``
    selects the peeling engine of the underlying decomposition;
    ``listing_engine`` selects the clique-listing engine for both the
    decomposition and the suffix re-listings (defaults to ``engine``).
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    tracker = tracker or CostTracker()
    if listing_engine is None:
        listing_engine = engine
    config = replace(NucleusConfig.optimal(1, k), engine=engine,
                     listing_engine=listing_engine)
    result = arb_nucleus_decomp(graph, 1, k, config, tracker)
    if listing_engine == "batch" and tracker.race_detector is not None:
        listing_engine = "scalar"
    cores = np.zeros(graph.n, dtype=np.int64)
    for (v,), value in result.as_dict().items():
        cores[v] = value
    # Peeling order: ascending core, ties by id; suffixes are candidate
    # subgraphs.  Evaluate each distinct core threshold.
    order = np.lexsort((np.arange(graph.n), cores))
    best = DensestResult(k, [], 0.0, 0)
    with tracker.phase("scan"):
        for threshold in np.unique(cores):
            members = order[cores[order] >= threshold]
            if members.size < k:
                continue
            # Building the induced subgraph filters every edge of the
            # input against the member set; parallel, so log span.
            tracker.add_work(float(graph.m + members.size))
            tracker.add_span(_log2(members.size + 2))
            sub, originals = graph.induced_subgraph(members)
            dg, _ = orient(sub, "degeneracy", tracker)
            count = count_cliques(dg, k, tracker, engine=listing_engine)
            density = count / members.size
            if density > best.density:
                best = DensestResult(k, [int(v) for v in originals],
                                     density, count)
    return best
