"""Definitional validation of nucleus decompositions.

A (claimed) (r,s) nucleus decomposition can be checked against the
*definition* rather than against another implementation: for every level
``c``, the union of r-cliques with core >= c must form a subgraph in which
each such r-clique participates in at least ``c`` s-cliques whose r-cliques
all also have core >= c; and no r-clique's core may be raisable (maximality
of each nucleus).

These checks are independent of the peeling machinery (they enumerate
s-cliques directly from the graph), so they catch bug classes that
oracle-versus-implementation comparisons can miss.  They are exponential
in spirit --- use them on small graphs and samples.
"""

from __future__ import annotations

from itertools import combinations

from ..cliques.listing import collect_cliques
from ..cliques.orient import orient
from ..graph.csr import CSRGraph


class NucleusValidationError(AssertionError):
    """A claimed decomposition violates the nucleus definition."""


def _s_cliques_with_subsets(graph: CSRGraph, r: int, s: int):
    dg, _ = orient(graph, "degeneracy")
    for row in collect_cliques(dg, s):
        big = tuple(sorted(int(x) for x in row))
        yield big, [sub for sub in combinations(big, r)]


def validate_nucleus_decomposition(graph: CSRGraph, r: int, s: int,
                                   cores: dict[tuple, int]) -> None:
    """Raise :class:`NucleusValidationError` unless ``cores`` is the
    (r,s)-clique-core function of ``graph``.

    Checks three properties:

    1. **Coverage** -- every r-clique of the graph appears in ``cores``.
    2. **Soundness** -- at each level c, each surviving r-clique touches at
       least c surviving s-cliques (so each claimed nucleus is a c-(r,s)
       nucleus).
    3. **Maximality** -- simulated re-peeling of the survivor subgraph at
       level c+1 eliminates every r-clique whose claimed core is exactly c
       (so no core number is understated).
    """
    dg, _ = orient(graph, "degeneracy")
    actual_r = {tuple(sorted(int(x) for x in row))
                for row in collect_cliques(dg, r)}
    claimed = set(cores)
    if actual_r != claimed:
        missing = actual_r - claimed
        extra = claimed - actual_r
        raise NucleusValidationError(
            f"coverage: missing={sorted(missing)[:5]} "
            f"extra={sorted(extra)[:5]}")

    incidence = list(_s_cliques_with_subsets(graph, r, s))
    levels = sorted(set(cores.values()))
    for level in levels:
        survivors = {cl for cl, c in cores.items() if c >= level}
        counts = {cl: 0 for cl in survivors}
        for _big, subs in incidence:
            if all(sub in survivors for sub in subs):
                for sub in subs:
                    counts[sub] += 1
        # Soundness: everyone at this level meets the degree bound.
        for clique, count in counts.items():
            if count < level:
                raise NucleusValidationError(
                    f"soundness: {clique} has core >= {level} but only "
                    f"{count} surviving s-cliques")
        # Maximality: peeling survivors at level+1 must remove exactly
        # the cliques whose claimed core equals this level.
        alive = set(survivors)
        changed = True
        while changed:
            changed = False
            counts = {cl: 0 for cl in alive}
            for _big, subs in incidence:
                if all(sub in alive for sub in subs):
                    for sub in subs:
                        counts[sub] += 1
            doomed = {cl for cl, count in counts.items()
                      if count < level + 1}
            if doomed:
                alive -= doomed
                changed = True
        for clique in alive:
            if cores[clique] == level:
                raise NucleusValidationError(
                    f"maximality: {clique} survives peeling at level "
                    f"{level + 1} but its claimed core is {level}")


def is_valid_nucleus_decomposition(graph: CSRGraph, r: int, s: int,
                                   cores: dict[tuple, int]) -> bool:
    """Boolean wrapper around :func:`validate_nucleus_decomposition`."""
    try:
        validate_nucleus_decomposition(graph, r, s, cores)
    except NucleusValidationError:
        return False
    return True
