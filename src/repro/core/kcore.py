"""k-core decomposition: the (1,2) specialization of the nucleus problem.

The paper frames k-core as the k-(1,2) nucleus (Section 3).  This module
offers both routes:

* :func:`k_core` -- a direct, fast bucket-peeling implementation
  (Matula--Beck), the classic O(n + m) algorithm;
* :func:`k_core_via_nucleus` -- the same answer through the full
  ARB-NUCLEUS-DECOMP machinery, useful for cross-checking and for
  consistent cost accounting.

Both return the coreness of every vertex.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker
from .config import NucleusConfig
from .decomp import arb_nucleus_decomp


def k_core(graph: CSRGraph, tracker: CostTracker | None = None) -> np.ndarray:
    """Coreness of every vertex by direct bucket peeling (O(n + m))."""
    n = graph.n
    degree = graph.degrees.astype(np.int64).copy()
    max_deg = int(degree.max()) if n else 0
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    level = 0
    cursor = 0
    processed = 0
    while processed < n:
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
        v = buckets[cursor].pop()
        if removed[v] or degree[v] != cursor:
            continue  # stale bucket entry
        level = max(level, cursor)
        core[v] = level
        removed[v] = True
        processed += 1
        for u in graph.neighbors(v):
            if not removed[u]:
                degree[u] -= 1
                buckets[degree[u]].append(int(u))
                if degree[u] < cursor:
                    cursor = degree[u]
    if tracker is not None:
        tracker.add_work(float(n + 2 * graph.m))
    return core


def k_core_via_nucleus(graph: CSRGraph,
                       tracker: CostTracker | None = None) -> np.ndarray:
    """Coreness via the generic (1,2) nucleus decomposition."""
    result = arb_nucleus_decomp(graph, 1, 2, NucleusConfig.optimal(1, 2),
                                tracker)
    core = np.zeros(graph.n, dtype=np.int64)
    for (v,), value in result.as_dict().items():
        core[v] = value
    return core


def degeneracy_core(graph: CSRGraph) -> int:
    """The graph's degeneracy: the maximum coreness over all vertices."""
    core = k_core(graph)
    return int(core.max()) if core.size else 0
