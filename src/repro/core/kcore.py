"""k-core decomposition: the (1,2) specialization of the nucleus problem.

The paper frames k-core as the k-(1,2) nucleus (Section 3).  This module
offers both routes:

* :func:`k_core` -- a direct bucket-peeling implementation (Matula--Beck),
  the classic O(n + m) algorithm, with a scalar oracle loop and a
  vectorized batch engine (``engine="batch"``) that reproduces the
  oracle's simulated costs bit for bit;
* :func:`k_core_via_nucleus` -- the same answer through the full
  ARB-NUCLEUS-DECOMP machinery, useful for cross-checking and for
  consistent cost accounting.

Both return the coreness of every vertex.

The peel is charged inside a ``"peel"`` phase: one unit per vertex for the
initial bucket fill, one unit per empty-bucket cursor advance, one unit
per bucket entry scanned (live or stale), ``deg(v) + 1`` per peeled vertex
(its full neighbor scan), and per processed bucket one peeling round plus
``log2(frontier + 2)`` span --- the bulk-synchronous view in which each
bucket's vertices peel concurrently (cf. the parallel bucketing structure
of arXiv:2502.08042).  Summed over a run the work is the classic
``O(n + m)`` total the old lump charge approximated, but it is now
attributed per level and per phase.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..parallel.runtime import CostTracker, _log2
from .config import NucleusConfig
from .decomp import arb_nucleus_decomp


def k_core(graph: CSRGraph, tracker: CostTracker | None = None,
           engine: str = "scalar") -> np.ndarray:
    """Coreness of every vertex by direct bucket peeling (O(n + m)).

    ``engine="batch"`` runs the vectorized peel
    (:func:`repro.core.batchcore.k_core_peel_batch`); simulated charges
    are bit-for-bit identical to the scalar oracle's.  The batch engine
    needs plain ndarray state, so a tracker carrying a race detector
    falls back to the scalar loop.
    """
    tracker = tracker or CostTracker()
    n = graph.n
    core = np.zeros(n, dtype=np.int64)
    if n == 0:
        return core
    use_batch = engine == "batch" and tracker.race_detector is None
    with tracker.phase("peel"):
        # Initial bucket fill: one pass over the degree array.
        tracker.add_work(float(n))
        if use_batch:
            from .batchcore import k_core_peel_batch
            k_core_peel_batch(graph, core, tracker)
        else:
            _peel_scalar(graph, core, tracker)
    return core


def _peel_scalar(graph: CSRGraph, core: np.ndarray,
                 tracker: CostTracker) -> None:
    """The Matula--Beck bucket peel; the batch engine's registered oracle.

    Buckets hold lazily-invalidated entries: a vertex is re-pushed at
    every degree it reaches, and snapshots filter entries whose vertex is
    already peeled or has since dropped to a lower bucket (each filtered
    entry still costs its scan unit, in both engines).
    """
    n = graph.n
    deg0 = graph.degrees.astype(np.int64)
    degree = deg0.copy()
    max_deg = int(degree.max())
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = np.zeros(n, dtype=bool)
    level = 0
    cursor = 0
    processed = 0
    while processed < n:
        while cursor <= max_deg and not buckets[cursor]:
            cursor += 1
            tracker.add_work(1.0)
        if cursor > max_deg:
            raise RuntimeError(
                "k_core: bucket cursor overran the maximum degree with "
                f"{n - processed} vertices unprocessed")
        entries = buckets[cursor]
        buckets[cursor] = []
        # Scanning the snapshot costs one unit per entry, stale or not.
        tracker.add_work(float(len(entries)))
        frontier = sorted(v for v in entries
                          if not removed[v] and degree[v] == cursor)
        if not frontier:
            continue
        level = max(level, cursor)
        # One bulk-synchronous round per processed bucket: the frontier's
        # vertices peel concurrently behind a reduction-tree barrier.
        tracker.add_round()
        tracker.add_span(_log2(len(frontier) + 2))
        min_drop = cursor
        for v in frontier:
            removed[v] = True
            core[v] = level
            processed += 1
            for u in graph.neighbors(v):
                u = int(u)
                if not removed[u]:
                    degree[u] -= 1
                    buckets[degree[u]].append(u)
                    if degree[u] < min_drop:
                        min_drop = degree[u]
            tracker.add_work(float(deg0[v] + 1))
        cursor = min_drop


def k_core_via_nucleus(graph: CSRGraph,
                       tracker: CostTracker | None = None) -> np.ndarray:
    """Coreness via the generic (1,2) nucleus decomposition."""
    result = arb_nucleus_decomp(graph, 1, 2, NucleusConfig.optimal(1, 2),
                                tracker)
    core = np.zeros(graph.n, dtype=np.int64)
    for (v,), value in result.as_dict().items():
        core[v] = value
    return core


def degeneracy_core(graph: CSRGraph) -> int:
    """The graph's degeneracy: the maximum coreness over all vertices."""
    core = k_core(graph)
    return int(core.max()) if core.size else 0
