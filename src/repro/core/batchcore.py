"""Vectorized k-core bucket peel (``k_core(engine="batch")``).

The scalar Matula--Beck loop in :mod:`repro.core.kcore` walks one Python
iteration per bucket entry and per neighbor; this engine processes each
bucket snapshot as flat numpy arrays instead: one gather of all frontier
neighborhoods, one vectorized liveness mask, one ``np.unique`` to turn
decrement events into per-vertex counts, and one difference-array update
of the pending-entry histogram that stands in for the scalar bucket lists
(cf. the parallel bucketing structure of arXiv:2502.08042).

The contract --- enforced by tests/test_batch_baselines.py and the bench
gate --- is that a batch run's *simulated* metrics are bit-for-bit
identical to the scalar oracle's.  Every charge on this path is
integer-valued except the per-bucket ``log2`` span, which is charged once
per processed bucket in both engines, so parity reduces to three facts
(full rules in docs/cost-model.md):

* the non-stale entries of the bucket at ``cursor`` are exactly the live
  vertices whose current degree equals ``cursor`` (a vertex is re-pushed
  whenever its degree drops, degrees only decrease, and stale entries are
  filtered at snapshot time), so the frontier needs no bucket lists;
* the scalar loop peels a bucket's frontier in ascending id order, so a
  frontier vertex is decremented by exactly its earlier-position frontier
  neighbors (plus nothing else peeled this round), which the liveness
  mask expresses positionally;
* bucket *lists* only ever surface through their lengths (the per-entry
  scan charge) and emptiness (cursor advances), so a pending-entry count
  per bucket --- maintained with one difference-array cumsum per round,
  one entry per decrement at its event-time degree --- reproduces the
  scalar charge stream exactly.

The engine requires plain ndarray peeling state, so :func:`~
repro.core.kcore.k_core` falls back to the scalar oracle when a race
detector is attached.
"""

from __future__ import annotations

import numpy as np

from ..parallel.primitives import segment_gather
from ..parallel.runtime import CostTracker, _log2

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007); regenerate fingerprints with
#: ``repro lint --strict --emit-registry`` after editing charges.
PARLINT_PARITY = {
    "k_core_peel_batch": {
        "oracle": "repro.core.kcore._peel_scalar",
        "fingerprint": {
            "add_round": 1,
            "add_span": 1,
            "add_work_int": 3,
        },
    },
}


def k_core_peel_batch(graph, core: np.ndarray,
                      tracker: CostTracker) -> None:
    """Run the bucket peel in batch mode, filling ``core`` in place.

    Mirrors the scalar loop bucket for bucket: same cursor trajectory,
    same per-entry scan charges, same rounds and span, same coreness.
    """
    n = graph.n
    deg0 = graph.degrees.astype(np.int64)
    degree = deg0.copy()
    max_deg = int(degree.max())
    offsets = graph.offsets
    targets = graph.targets
    #: Pending (possibly stale) entries per bucket; stands in for the
    #: scalar engine's bucket lists, whose contents only matter through
    #: their lengths and emptiness.
    pending = np.bincount(degree, minlength=max_deg + 1).astype(np.int64)
    #: Live vertices per current degree: lets stale-only snapshots (all
    #: entries invalid) skip the O(n) frontier scan entirely.
    live_at = pending.copy()
    #: Peeled vertices drop to degree -1, making liveness one comparison.
    removed = np.zeros(n, dtype=bool)
    pos = np.full(n, -1, dtype=np.int64)
    level = 0
    cursor = 0
    processed = 0
    while processed < n:
        advanced = 0
        while cursor <= max_deg and pending[cursor] == 0:
            cursor += 1
            advanced += 1
        tracker.add_work_int(advanced)
        if cursor > max_deg:
            raise RuntimeError(
                "k_core: bucket cursor overran the maximum degree with "
                f"{n - processed} vertices unprocessed")
        tracker.add_work_int(int(pending[cursor]))
        pending[cursor] = 0
        if live_at[cursor] == 0:
            continue  # every pending entry was stale
        frontier = np.flatnonzero(degree == cursor)
        level = max(level, cursor)
        tracker.add_round()
        tracker.add_span(_log2(frontier.size + 2))
        pos[frontier] = np.arange(frontier.size, dtype=np.int64)
        lens = deg0[frontier]
        nbrs = segment_gather(targets, offsets[frontier], lens)
        owner_pos = np.repeat(np.arange(frontier.size, dtype=np.int64),
                              lens)
        # A neighbor absorbs the decrement iff the scalar loop would have
        # seen it un-removed: peeled in an earlier bucket -> dead; peeled
        # this bucket -> dead only for earlier-position owners.
        tpos = pos[nbrs]
        live = np.where(tpos >= 0, owner_pos < tpos, ~removed[nbrs])
        hit = nbrs[live]
        uniq, kcnt = np.unique(hit, return_counts=True)
        if uniq.size:
            d_start = degree[uniq]
            # Each decrement re-pushes its vertex at the event-time
            # degree: buckets d-1 .. d-k gain one entry each.
            diff = np.zeros(max_deg + 2, dtype=np.int64)
            np.add.at(diff, d_start - kcnt, 1)
            np.add.at(diff, d_start, -1)
            pending += np.cumsum(diff)[:max_deg + 1]
            np.add.at(live_at, d_start, -1)
            degree[uniq] -= kcnt
            np.add.at(live_at, degree[uniq], 1)
            cursor = min(cursor, int(degree[uniq].min()))
        removed[frontier] = True
        core[frontier] = level
        pos[frontier] = -1
        # Frontier members may themselves have been decremented above, so
        # deduct each at its current (possibly dropped) degree.
        np.add.at(live_at, degree[frontier], -1)
        degree[frontier] = -1
        processed += int(frontier.size)
        tracker.add_work_int(int((deg0[frontier] + 1).sum()))
