"""The paper's primary contribution: ARB-NUCLEUS-DECOMP and its parts."""

from .aggregation import (AGGREGATORS, HashTableAggregator,
                          ListBufferAggregator, SimpleArrayAggregator,
                          make_aggregator)
from .config import NucleusConfig
from .decomp import NucleusResult, arb_nucleus_decomp
from .densest import DensestResult, k_clique_densest
from .kcore import degeneracy_core, k_core, k_core_via_nucleus
from .ktruss import k_truss, max_truss_subgraph, trussness
from .tables import CliqueTable
from .validate import (NucleusValidationError, is_valid_nucleus_decomposition,
                       validate_nucleus_decomposition)
from .verify import brute_force_kcore, brute_force_ktruss, brute_force_nucleus

__all__ = [
    "arb_nucleus_decomp", "NucleusResult", "NucleusConfig", "CliqueTable",
    "k_core", "k_core_via_nucleus", "degeneracy_core",
    "k_truss", "trussness", "max_truss_subgraph",
    "k_clique_densest", "DensestResult",
    "SimpleArrayAggregator", "ListBufferAggregator", "HashTableAggregator",
    "AGGREGATORS", "make_aggregator",
    "brute_force_nucleus", "brute_force_kcore", "brute_force_ktruss",
    "validate_nucleus_decomposition", "is_valid_nucleus_decomposition",
    "NucleusValidationError",
]
