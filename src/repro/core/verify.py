"""Reference (oracle) nucleus decomposition for testing.

A deliberately simple, structure-free implementation: materialize every
r-clique and s-clique plus their incidence, then peel with plain Python
dictionaries.  Quadratic-ish and memory-hungry, but obviously correct ---
the test suite checks ARB-NUCLEUS-DECOMP against it on small graphs.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..cliques.listing import collect_cliques
from ..cliques.orient import orient
from ..graph.csr import CSRGraph


def brute_force_nucleus(graph: CSRGraph, r: int, s: int
                        ) -> dict[tuple[int, ...], int]:
    """The (r,s)-clique-core number of every r-clique, by direct peeling."""
    if not 1 <= r < s:
        raise ValueError("need 1 <= r < s")
    dg, _ = orient(graph, "degeneracy")
    r_cliques = [tuple(sorted(row)) for row in collect_cliques(dg, r)]
    s_cliques = [tuple(sorted(row)) for row in collect_cliques(dg, s)]
    count = {clique: 0 for clique in r_cliques}
    incidence: dict[tuple, list[int]] = {clique: [] for clique in r_cliques}
    members: list[list[tuple]] = []
    for idx, big in enumerate(s_cliques):
        subs = [sub for sub in combinations(big, r)]
        members.append(subs)
        for sub in subs:
            count[sub] += 1
            incidence[sub].append(idx)
    s_alive = [True] * len(s_cliques)
    core: dict[tuple, int] = {}
    remaining = set(r_cliques)
    level = 0
    while remaining:
        level = max(level, min(count[c] for c in remaining))
        peel = {c for c in remaining if count[c] <= level}
        for clique in peel:
            core[clique] = level
        for clique in peel:
            for idx in incidence[clique]:
                if not s_alive[idx]:
                    continue
                s_alive[idx] = False
                for other in members[idx]:
                    if other not in peel and other in remaining:
                        count[other] -= 1
        remaining -= peel
    return core


def brute_force_kcore(graph: CSRGraph) -> np.ndarray:
    """Classic k-core (coreness) by direct peeling; equals (1,2) nuclei."""
    degree = graph.degrees.astype(np.int64).copy()
    alive = np.ones(graph.n, dtype=bool)
    core = np.zeros(graph.n, dtype=np.int64)
    level = 0
    remaining = graph.n
    while remaining:
        live = np.flatnonzero(alive)
        level = max(level, int(degree[live].min()))
        peel = live[degree[live] <= level]
        core[peel] = level
        alive[peel] = False
        remaining -= peel.size
        for v in peel:
            nbrs = graph.neighbors(v)
            degree[nbrs[alive[nbrs]]] -= 1
    return core


def brute_force_ktruss(graph: CSRGraph) -> dict[tuple[int, int], int]:
    """Edge trussness by direct peeling; equals (2,3) nuclei.

    Reports the *triangle-core* convention used by the paper: the maximum
    ``c`` such that the edge is in a subgraph where every edge is in at
    least ``c`` triangles (i.e. k-truss number minus 2).
    """
    return brute_force_nucleus(graph, 2, 3)
