"""The vectorized batch peeling engine (``NucleusConfig(engine="batch")``).

The scalar peel loop in :mod:`repro.core.decomp` executes one Python-level
``decode`` / intersection / ``combinations`` chain per peeled r-clique; on
large frontiers the interpreter overhead dwarfs the algorithm.  This engine
processes each peeled bucket as flat numpy arrays instead: batch decode,
array-valued intersections, one vectorized probe pass over all
``comb(s, r)`` sub-cliques of every rediscovered s-clique, one ``np.add.at``
scatter for the count updates, and a vectorized first-touch dedup feeding
``Aggregator.record_many``.

The contract --- enforced by tests/test_batch_engine.py and the bench gate
--- is that a batch run's *simulated* metrics are bit-for-bit identical to
the scalar engine's: same work, span, rounds, atomics, probes, contention,
and cache misses, same core numbers and round log.  Three mechanisms make
that possible (full rules in docs/cost-model.md):

* every work charge on the peel path is integer-valued, and integer work
  lands in :class:`~repro.parallel.runtime.PhaseStats`' exact int bin, so
  charging a closed-form *sum* per batch equals per-call charging;
* per-task span is the constant ``log2(n) * (s - r + 1)``, so the region
  max is the same constant;
* the cache simulator is order-sensitive, so the engine assembles the exact
  per-round address stream the scalar loop would emit --- decode addresses,
  then per s-clique the probe addresses of each examined sub-clique (route
  then final slot), then per applied update the count-cell address followed
  by any aggregator probe addresses --- and replays it through
  :meth:`~repro.parallel.runtime.CostTracker.access_sequence`.

The engine requires plain ndarray peeling state, so
:func:`~repro.core.decomp.arb_nucleus_decomp` falls back to the scalar
oracle when a race detector is attached (shadow arrays and per-task
ownership only exist there).
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from ..cliques.batchlist import expand_cliques
from ..cliques.listing import rec_list_cliques
from ..parallel.primitives import intersect_many, interleave_segments
from ..parallel.runtime import CostTracker, _log2

_ALIVE, _PEELING, _PEELED = 0, 1, 2

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007).  Each kernel names the scalar oracle whose
#: tracker charges it must reproduce, plus its lexical charge fingerprint
#: (direct charge-method calls and tracker-forwarding helper calls, with
#: call-site counts).  Editing a kernel's charges requires re-running the
#: differential parity tests and re-blessing the fingerprint here ---
#: regenerate with ``repro lint --strict --emit-registry``.
PARLINT_PARITY = {
    "peel_batch": {
        "oracle": "repro.core.decomp._peel_scalar",
        "fingerprint": {
            "_edges_alive_many": 1,
            "_run_round": 1,
            "access_sequence": 1,
            "add_round": 1,
            "settle": 1,
            "task_span": 1,
        },
    },
    "_edges_alive_many": {
        "oracle": "repro.core.tables.CliqueTable.cell_of",
        "fingerprint": {
            "access_sequence": 1,
            "add_probes": 1,
            "add_work_int": 1,
        },
    },
    "_run_round": {
        "oracle": "repro.core.decomp._update_one",
        "fingerprint": {
            "access_sequence": 2,
            "add_cliques": 1,
            "add_probes": 1,
            "add_work_int": 3,
            "expand_cliques": 1,
            "intersect_many": 1,
            "rec_list_cliques": 1,
        },
    },
}


def peel_batch(*, graph, dg, working, table, buckets, aggregator, meter,
               status, last_round, cores, contraction, config,
               tracker: CostTracker, n_r: int, r: int, s: int,
               fractional: bool) -> tuple[int, int, list]:
    """Run the peeling phase in batch mode; returns (rho, max_core, log).

    Mirrors the scalar loop round for round: same bucket extractions, same
    begin_round/settle/finish_round sequence, same contraction triggers.
    """
    subsets_per_s = comb(s, r)
    comb_cols = np.asarray(list(combinations(range(s), r)), dtype=np.int64)
    task_span = _log2(graph.n) * (s - r + 1)
    cache_on = tracker.cache is not None
    # With listing_engine="batch", UPDATE completions run through the
    # frontier engine instead of re-entering the scalar recursion per
    # peeled clique (same race-detector fallback as the engines).
    listing_batch = (config.listing_engine == "batch"
                     and tracker.race_detector is None)
    finished = 0
    rho = 0
    round_id = 0
    max_core = 0
    round_log: list[tuple[int, int, int]] = []

    while finished < n_r:
        level, peel_cells = buckets.next_bucket()
        rho += 1
        tracker.add_round()
        max_core = max(max_core, level)
        cores[peel_cells] = level
        status[peel_cells] = _PEELING
        finished += peel_cells.size
        estimate = int(peel_cells.size) * max(1, level) * \
            max(1, subsets_per_s - 1)
        aggregator.begin_round(int(peel_cells.size), estimate)

        with tracker.parallel(int(peel_cells.size)) as region:
            _run_round(peel_cells, comb_cols, dg, working, table, aggregator,
                       status, last_round, round_id, fractional, cache_on,
                       config.threads, r, s, tracker, listing_batch)
            region.task_span(task_span)

        meter.settle(tracker)
        updated = aggregator.finish_round()
        round_log.append((level, int(peel_cells.size), int(updated.size)))
        status[peel_cells] = _PEELED
        if updated.size:
            new_values = np.rint(table.counts[updated]).astype(np.int64)
            buckets.update(updated, new_values)
        if contraction is not None:
            edges, dec_addrs, _ = table.decode_many(
                peel_cells, collect_addresses=cache_on)
            if cache_on:
                tracker.access_sequence(dec_addrs)
            for u, v in edges:
                contraction.note_peeled_edge(int(u), int(v))
            contraction.maybe_contract(
                lambda a, b: status[table.cell_of(
                    (a, b) if a < b else (b, a))] != _PEELED,
                edges_alive_many=lambda pairs: _edges_alive_many(
                    pairs, table, status, tracker, cache_on))
        round_id += 1
    return rho, max_core, round_log


def _edges_alive_many(pairs, table, status, tracker, cache_on) -> np.ndarray:
    """Batch form of the contraction liveness lambda.

    Charges exactly what ``m`` scalar ``cell_of`` calls would --- per pair
    the routing profile plus ``probes * suffix_width`` work and ``probes``
    table probes, with the route-then-slot addresses replayed in pair
    order.  Every checked pair is an original edge of G, hence present.
    """
    rows = np.sort(np.asarray(pairs, dtype=np.int64), axis=1)
    cells, probes, slot_addrs, route_addrs = table.lookup_many(rows)
    route_work, route_probes, _ = table.route_charge_profile()
    m = rows.shape[0]
    total_probes = int(probes.sum())
    tracker.add_work_int(m * route_work + total_probes * table.suffix_width)
    tracker.add_probes(m * route_probes + total_probes)
    if cache_on:
        tracker.access_sequence(np.concatenate(
            [route_addrs, slot_addrs[:, None]], axis=1).reshape(-1))
    return status[cells] != _PEELED


def _run_round(peel_cells, comb_cols, dg, working, table, aggregator,
               status, last_round, round_id, fractional, cache_on, threads,
               r, s, tracker, listing_batch: bool = False) -> None:
    """One round's worth of UPDATE calls, batched (Algorithm 2 lines 13-18)."""
    n_tasks = peel_cells.size
    cliques, dec_addrs, dec_lens = table.decode_many(
        peel_cells, collect_addresses=cache_on)

    # -- rediscover candidate completions per peeled clique.
    if r == 1:
        candidates = [working.neighbors(int(v)) for v in cliques[:, 0]]
        tracker.add_work_int(n_tasks)
    else:
        candidates = intersect_many(
            [[working.neighbors(int(v)) for v in row] for row in cliques],
            tracker)

    # -- enumerate incident s-cliques (rows) in scalar discovery order.
    if s - r == 1:
        sizes = np.fromiter((c.size for c in candidates), dtype=np.int64,
                            count=n_tasks)
        total = int(sizes.sum())
        tracker.add_work_int(total)
        tracker.add_cliques(total)
        rows = np.empty((total, s), dtype=np.int64)
        if total:
            rows[:, :r] = np.repeat(cliques, sizes, axis=0)
            rows[:, r] = np.concatenate(
                [c for c in candidates if c.size]).astype(np.int64)
        row_task = np.repeat(np.arange(n_tasks, dtype=np.int64), sizes)
    elif listing_batch:
        # Frontier expansion over every eligible task at once; tasks whose
        # candidate set cannot complete an s-clique are skipped without
        # charge, exactly like the scalar loop's early continue.
        sizes = np.fromiter((c.size for c in candidates), dtype=np.int64,
                            count=n_tasks)
        eligible = np.flatnonzero(sizes >= s - r)
        cand_lens = sizes[eligible]
        cand_values = np.concatenate(
            [candidates[t] for t in eligible]).astype(np.int64) \
            if eligible.size else np.empty(0, dtype=np.int64)
        rows, base_of = expand_cliques(dg, cliques[eligible], cand_values,
                                       cand_lens, s - r, tracker)
        rows = rows.reshape(-1, s)
        row_task = eligible[base_of]
    else:
        found: list[tuple] = []
        task_of: list[int] = []
        for t in range(n_tasks):
            cand = candidates[t]
            if cand.size < s - r:
                continue
            base = tuple(int(x) for x in cliques[t])
            before = len(found)
            rec_list_cliques(dg, cand, s - r, base, found.append, tracker)
            task_of.extend([t] * (len(found) - before))
        rows = np.asarray(found, dtype=np.int64).reshape(-1, s)
        row_task = np.asarray(task_of, dtype=np.int64)

    n_rows = rows.shape[0]
    n_combs = comb_cols.shape[0]
    route_work, route_probes, route_len = table.route_charge_profile()
    if n_rows == 0:
        if cache_on:
            tracker.access_sequence(dec_addrs)
        return

    # -- probe every sub-clique until the scalar loop would stop (first
    # PEELED), charging the per-subset route + probe costs in bulk.
    sorted_rows = np.sort(rows, axis=1)
    subsets = sorted_rows[:, comb_cols]  # (n_rows, n_combs, r)
    cells_flat, probes_flat, slot_addrs_flat, route_addrs_flat = \
        table.lookup_many(subsets.reshape(n_rows * n_combs, r))
    cells = cells_flat.reshape(n_rows, n_combs)
    probes = probes_flat.reshape(n_rows, n_combs)
    state = status[cells]
    peeled_mask = state == _PEELED
    has_peeled = peeled_mask.any(axis=1)
    first_peeled = np.where(has_peeled, peeled_mask.argmax(axis=1), n_combs)
    probed_count = np.minimum(first_peeled + 1, n_combs)
    probed_mask = np.arange(n_combs)[np.newaxis, :] < probed_count[:, None]
    probes_examined = int(probes[probed_mask].sum())
    n_probed = int(probed_count.sum())
    tracker.add_work_int(n_rows * s + n_probed * route_work
                         + probes_examined * table.suffix_width)
    tracker.add_probes(n_probed * route_probes + probes_examined)

    # -- decide which rows apply updates and with what delta.
    survivors = ~has_peeled
    peeling_mask = state == _PEELING
    alive_mask = state == _ALIVE
    n_peeling = peeling_mask.sum(axis=1)
    if fractional:
        apply_row = survivors & alive_mask.any(axis=1)
        row_delta = -1.0 / np.maximum(n_peeling, 1)
    else:
        # Representative mode: only the s-clique whose *base* r-clique is
        # the least peeling sub-clique subtracts; min() over subset tuples
        # is the first peeling subset in combination order.
        first_peeling = np.where(n_peeling > 0,
                                 peeling_mask.argmax(axis=1), 0)
        representative = np.take_along_axis(
            subsets, first_peeling[:, None, None], axis=1)[:, 0, :]
        base_sorted = np.sort(rows[:, :r], axis=1)
        apply_row = survivors & alive_mask.any(axis=1) \
            & (representative == base_sorted).all(axis=1)
        row_delta = np.full(n_rows, -1.0)

    update_rows = np.flatnonzero(apply_row)
    alive_sel = alive_mask[update_rows]
    update_cells = cells[update_rows][alive_sel]  # row-major: scalar order
    update_row_of = np.repeat(update_rows, alive_sel.sum(axis=1))
    n_updates = update_cells.size
    # PAR010 waiver: row_delta (-1/n_peeling) is the batch replay of the
    # scalar engine's fractional delta --- order-dependent in float
    # arithmetic, but np.add.at applies it in fixed row-major order and
    # every consumer re-rounds with np.rint, so the engine-parity gate
    # (bit-for-bit batch == scalar metrics) already pins the result.
    count_addrs = table.add_count_at_many(  # parlint: disable=PAR010
        update_cells, row_delta[update_row_of],
        collect_addresses=cache_on)

    # -- first-touch dedup and aggregation (vectorized last_round stamp).
    sink = [] if (cache_on and aggregator.name == "hash") else None
    record_mask = np.zeros(n_updates, dtype=bool)
    if n_updates:
        fresh = last_round[update_cells] != round_id
        _, first_index = np.unique(update_cells, return_index=True)
        first_in_batch = np.zeros(n_updates, dtype=bool)
        first_in_batch[first_index] = True
        record_mask = fresh & first_in_batch
        record_cells = update_cells[record_mask]
        last_round[record_cells] = round_id
        record_threads = row_task[update_row_of[record_mask]] % threads
        aggregator.record_many(record_cells, record_threads,
                               address_sink=sink)

    if not cache_on:
        return

    # -- replay the exact scalar address stream: per task its decode
    # addresses, then per discovered s-clique the probed subsets' route +
    # slot addresses, then per applied update the count-cell address
    # followed by the aggregator's captured probe addresses.
    block = np.concatenate(
        [route_addrs_flat.reshape(n_rows, n_combs, route_len),
         slot_addrs_flat.reshape(n_rows, n_combs, 1)], axis=2)
    probe_flat = block[probed_mask].reshape(-1).astype(np.int64)
    probe_lens = probed_count * (route_len + 1)
    if n_updates:
        if sink is not None:
            agg_lens = np.zeros(n_updates, dtype=np.int64)
            if sink:
                agg_lens[record_mask] = np.fromiter(
                    (seg.size for seg in sink), dtype=np.int64,
                    count=len(sink))
            agg_flat = np.concatenate(sink).astype(np.int64) if sink \
                else np.empty(0, dtype=np.int64)
            update_flat = interleave_segments(
                count_addrs.astype(np.int64),
                np.ones(n_updates, dtype=np.int64), agg_flat, agg_lens)
            update_seg_lens = 1 + agg_lens
        else:
            update_flat = count_addrs.astype(np.int64)
            update_seg_lens = np.ones(n_updates, dtype=np.int64)
        row_update_lens = np.zeros(n_rows, dtype=np.int64)
        np.add.at(row_update_lens, update_row_of, update_seg_lens)
    else:
        update_flat = np.empty(0, dtype=np.int64)
        row_update_lens = np.zeros(n_rows, dtype=np.int64)
    row_flat = interleave_segments(probe_flat, probe_lens,
                                   update_flat, row_update_lens)
    task_row_lens = np.zeros(n_tasks, dtype=np.int64)
    np.add.at(task_row_lens, row_task, probe_lens + row_update_lens)
    tracker.access_sequence(
        interleave_segments(dec_addrs.astype(np.int64), dec_lens,
                            row_flat, task_row_lens))
