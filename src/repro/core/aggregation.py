"""Aggregating the set ``U`` of r-cliques with updated counts (Section 5.5).

Each peeling round must collect the distinct r-cliques whose s-clique
counts changed, to re-bucket them.  The paper offers three strategies with
different contention/clearing trade-offs, all implemented here behind one
interface:

* **simple array** -- one shared cursor advanced by fetch-and-add for every
  stored r-clique; compact, nothing to clear, but every insertion contends
  on the cursor;
* **list buffer** -- each of the P simulated threads owns a cursor into its
  private block of the output array, contending only when a block fills
  and a fresh one must be reserved; unused slots are filtered out at the
  end of the round;
* **hash table** -- a parallel hash table sized per round from the number
  of peeled r-cliques; no reservation contention at all, but the table
  must be cleared (work proportional to its capacity) every round.

First-touch detection (an r-clique enters ``U`` only on its first count
update of the round) is the caller's job --- the decomposition keeps a
per-cell round stamp --- so ``record`` is only called once per (cell, round).

Contention flows through a :class:`~repro.parallel.atomics.ContentionMeter`
settled by the caller at the end of each round, so the simple array's
serialized fetch-and-adds lengthen the simulated critical path exactly as
the paper describes.

Race checking: when the tracker carries a
:class:`~repro.sanitize.racecheck.RaceDetector`, every insertion
shadow-logs its accesses --- cursor reservations as mediated fetch-and-adds,
the reserved slot as a plain write (safe because reservation makes the slot
private), and the list buffer's per-thread state under a ``("thread", t)``
owner, since tasks multiplexed onto one simulated worker run sequentially.
"""

from __future__ import annotations

import numpy as np

from ..parallel.atomics import ContentionMeter
from ..parallel.hashtable import ParallelHashTable
from ..parallel.runtime import CostTracker

#: Simulated address of the shared cursor (arbitrary, distinct per purpose).
_CURSOR_ADDRESS = -1
_BLOCK_CURSOR_ADDRESS = -2


class SimpleArrayAggregator:
    """Section 5.5's first option: a flat array with one shared cursor."""

    name = "array"

    def __init__(self, capacity: int, threads: int = 1,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        del threads, buffer_size
        self._slots = np.zeros(max(1, capacity), dtype=np.int64)
        self._cursor = 0
        self.tracker = tracker
        self.meter = meter
        self._slot_base = None  # lazily race-detector-allocated

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        del peeled, update_estimate
        self._cursor = 0  # no clearing needed: the cursor bounds validity

    def _grow_to(self, needed: int) -> None:
        """Double the slot array until ``needed`` records fit.

        Each doubling charges the copy of the live prefix, so a sequence of
        records costs amortized O(1) extra work; without this, recording
        past the initial capacity was an opaque ``IndexError``.
        """
        size = self._slots.size
        if needed <= size:
            return
        new_size = size
        while new_size < needed:
            new_size *= 2
        if self.tracker is not None and self._cursor:
            self.tracker.add_work(float(self._cursor))
        grown = np.zeros(new_size, dtype=np.int64)
        grown[:self._cursor] = self._slots[:self._cursor]
        self._slots = grown
        self._slot_base = None  # shadow region is stale after realloc

    def record(self, cell: int, thread: int = 0) -> None:
        del thread
        self._grow_to(self._cursor + 1)
        detector = None
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.add_atomic()
            detector = self.tracker.race_detector
        if self.meter is not None:
            self.meter.record(_CURSOR_ADDRESS)  # every insert hits the cursor
        if detector is not None:
            # fetch-and-add on the shared cursor, then a plain write to the
            # privately reserved slot.
            detector.log(_CURSOR_ADDRESS, write=True, atomic=True)
            if self._slot_base is None:
                self._slot_base = detector.allocate(
                    self._slots.size, "U_array")
            detector.log(self._slot_base + self._cursor, write=True)
        self._slots[self._cursor] = cell
        self._cursor += 1

    def record_many(self, cells, threads=None, address_sink=None) -> None:
        """Batch :meth:`record`: charges exactly what the per-cell calls
        would (1 work + 1 atomic + 1 cursor collision each)."""
        del threads, address_sink
        cells = np.asarray(cells, dtype=np.int64)
        n = cells.size
        if n == 0:
            return
        if self.tracker is not None and self.tracker.race_detector is not None:
            for cell in cells.tolist():
                self.record(cell)
            return
        self._grow_to(self._cursor + n)
        if self.tracker is not None:
            self.tracker.add_work_int(n)
            self.tracker.add_atomic(n)
        if self.meter is not None:
            self.meter.record(_CURSOR_ADDRESS, n)
        self._slots[self._cursor:self._cursor + n] = cells
        self._cursor += n

    def finish_round(self) -> np.ndarray:
        return self._slots[:self._cursor].copy()


class ListBufferAggregator:
    """Section 5.5's list buffer: per-thread cursors over private blocks."""

    name = "list_buffer"

    def __init__(self, capacity: int, threads: int = 60,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        self.threads = max(1, threads)
        self.buffer_size = max(1, buffer_size)
        # Worst case: every thread wastes all but one slot of its last block.
        self._slots = np.full(
            max(1, capacity) + self.threads * self.buffer_size, -1,
            dtype=np.int64)
        self.tracker = tracker
        self.meter = meter
        self._slot_base = None  # lazily race-detector-allocated
        self._next_block = 0
        self._thread_cursor = np.zeros(self.threads, dtype=np.int64)
        self._thread_remaining = np.zeros(self.threads, dtype=np.int64)
        self._allocated = 0

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        del peeled, update_estimate
        # Reusing the buffer needs no clearing: resetting cursors suffices.
        self._next_block = 0
        self._thread_remaining.fill(0)
        self._allocated = 0

    def record(self, cell: int, thread: int = 0) -> None:
        thread %= self.threads
        detector = (self.tracker.race_detector
                    if self.tracker is not None else None)
        if self._thread_remaining[thread] == 0:
            # Reserve the next block with a fetch-and-add on the shared
            # block cursor -- the only contended operation.
            if self.meter is not None:
                self.meter.record(_BLOCK_CURSOR_ADDRESS)
            if self.tracker is not None:
                self.tracker.add_atomic()
            if detector is not None:
                detector.log(_BLOCK_CURSOR_ADDRESS, write=True, atomic=True)
            self._thread_cursor[thread] = self._next_block
            self._thread_remaining[thread] = self.buffer_size
            self._next_block += self.buffer_size
            self._allocated += self.buffer_size
        if self.tracker is not None:
            self.tracker.add_work(1.0)
        if detector is not None:
            # Slots inside a reserved block (and the cursors themselves)
            # belong to the worker thread, not the task: tasks sharing a
            # worker run sequentially, so attribute accesses to the worker.
            if self._slot_base is None:
                self._slot_base = detector.allocate(
                    self._slots.size, "U_list_buffer")
            owner = ("thread", int(thread))
            detector.log(self._slot_base + int(self._thread_cursor[thread]),
                         write=True, owner=owner)
        self._slots[self._thread_cursor[thread]] = cell
        self._thread_cursor[thread] += 1
        self._thread_remaining[thread] -= 1

    def record_many(self, cells, threads=None, address_sink=None) -> None:
        """Batch :meth:`record` with exact slot placement and charges.

        Replays the per-thread block-cursor arithmetic in closed form: the
        k-th record of a thread (counting from its current block fill)
        reserves a fresh block iff ``k % buffer_size == 0``, and blocks are
        handed out in global record order --- so slot contents, reservation
        count (atomics + block-cursor collisions), and the round's filtered
        output come out identical to per-cell calls.
        """
        del address_sink
        cells = np.asarray(cells, dtype=np.int64)
        n = cells.size
        if n == 0:
            return
        if threads is None:
            th = np.zeros(n, dtype=np.int64)
        else:
            th = np.asarray(threads, dtype=np.int64) % self.threads
        if self.tracker is not None and self.tracker.race_detector is not None:
            for cell, t in zip(cells.tolist(), th.tolist()):
                self.record(cell, t)
            return
        size = self.buffer_size
        order = np.argsort(th, kind="stable")
        sorted_th = th[order]
        first_of_group = np.ones(n, dtype=bool)
        first_of_group[1:] = sorted_th[1:] != sorted_th[:-1]
        group_starts = np.flatnonzero(first_of_group)
        group_ids = np.cumsum(first_of_group) - 1
        # k: how many records this thread has placed since its current
        # block's start, including carried-over fill from earlier calls.
        within = np.arange(n, dtype=np.int64) - group_starts[group_ids]
        base_fill = (size - self._thread_remaining) % size
        k_sorted = base_fill[sorted_th] + within
        k = np.empty(n, dtype=np.int64)
        k[order] = k_sorted
        need_new = (k % size) == 0
        n_reservations = int(need_new.sum())
        # Blocks are reserved in global record order.
        reservation_rank = np.cumsum(need_new) - 1
        new_block_start = self._next_block + size * reservation_rank
        fill_sorted = np.where(need_new[order], new_block_start[order], -1)
        current_block_start = self._thread_cursor \
            - (size - self._thread_remaining)
        for g, start in enumerate(group_starts):
            end = group_starts[g + 1] if g + 1 < group_starts.size else n
            segment = fill_sorted[start:end]
            if segment[0] < 0:
                segment[0] = current_block_start[sorted_th[start]]
            # Block starts are monotone within a thread, so a running max
            # forward-fills each record's owning block.
            np.maximum.accumulate(segment, out=segment)
        slots = np.empty(n, dtype=np.int64)
        slots[order] = fill_sorted + k_sorted % size
        self._slots[slots] = cells
        if self.meter is not None and n_reservations:
            self.meter.record(_BLOCK_CURSOR_ADDRESS, n_reservations)
        if self.tracker is not None:
            self.tracker.add_atomic(n_reservations)
            self.tracker.add_work_int(n)
        # Per-thread cursor state after the batch.
        present = sorted_th[group_starts]
        group_ends = np.empty(group_starts.size, dtype=np.int64)
        group_ends[:-1] = group_starts[1:]
        group_ends[-1] = n
        last_slot = fill_sorted + k_sorted % size  # sorted order
        self._thread_cursor[present] = last_slot[group_ends - 1] + 1
        last_k = k_sorted[group_ends - 1]
        self._thread_remaining[present] = size - 1 - (last_k % size)
        self._next_block += size * n_reservations
        self._allocated += size * n_reservations

    def finish_round(self) -> np.ndarray:
        # Parallel-filter unused slots out of the allocated prefix.
        used = self._slots[:self._next_block]
        if self.tracker is not None:
            self.tracker.add_work(float(self._allocated))
        result = used[used >= 0].copy()
        used.fill(-1)
        return result


class HashTableAggregator:
    """Section 5.5's hash table: contention-free inserts, per-round clears."""

    name = "hash"

    def __init__(self, capacity: int, threads: int = 1,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        del threads, meter, buffer_size
        self.capacity = max(1, capacity)
        self.tracker = tracker
        self._table: ParallelHashTable | None = None
        self._slot_base = None  # lazily race-detector-allocated

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        # Size the table from this round's peel: fewer peeled r-cliques
        # means less space and therefore less clearing work afterwards.
        hint = max(4, min(self.capacity, update_estimate))
        self._table = ParallelHashTable(hint, tracker=self.tracker)

    def record(self, cell: int, thread: int = 0) -> None:
        del thread
        if self.tracker is not None and self.tracker.race_detector is not None:
            # Hash-table inserts are CAS-mediated slot claims.
            if self._slot_base is None:
                self._slot_base = self.tracker.race_detector.allocate(
                    self.capacity, "U_hash")
            self.tracker.race_detector.log(
                self._slot_base + int(cell) % self.capacity,
                write=True, atomic=True)
        self._table.insert_or_add(cell, 0.0)

    def record_many(self, cells, threads=None, address_sink=None) -> None:
        """Batch :meth:`record`.

        Hash inserts are inherently sequence-dependent (probing and growth
        depend on prior inserts), so this loops --- charging is already
        identical per record.  With ``address_sink`` given (and a tracker
        attached), each record's simulated probe addresses are captured and
        appended to the sink as one array per record instead of being fed
        to the cache, so the batch engine can splice them into the full
        update stream at the scalar loop's position.
        """
        del threads
        capture = address_sink is not None and self.tracker is not None
        for cell in np.asarray(cells, dtype=np.int64).tolist():
            if capture:
                self.tracker.begin_access_capture()
                self.record(cell)
                address_sink.append(
                    np.asarray(self.tracker.end_access_capture(),
                               dtype=np.int64))
            else:
                self.record(cell)

    def finish_round(self) -> np.ndarray:
        cells = np.sort(np.asarray(
            [k for k, _ in self._table.items()], dtype=np.int64))
        # The entire table must be cleared before reuse.
        self._table.clear()
        return cells


AGGREGATORS = {
    "array": SimpleArrayAggregator,
    "list_buffer": ListBufferAggregator,
    "hash": HashTableAggregator,
}


def make_aggregator(kind: str, capacity: int, threads: int = 60,
                    tracker: CostTracker | None = None,
                    meter: ContentionMeter | None = None,
                    buffer_size: int = 64):
    """Instantiate an update-aggregation strategy by name."""
    if kind not in AGGREGATORS:
        raise ValueError(
            f"unknown aggregation {kind!r}; options: {sorted(AGGREGATORS)}")
    return AGGREGATORS[kind](capacity, threads=threads, tracker=tracker,
                             meter=meter, buffer_size=buffer_size)
