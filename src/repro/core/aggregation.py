"""Aggregating the set ``U`` of r-cliques with updated counts (Section 5.5).

Each peeling round must collect the distinct r-cliques whose s-clique
counts changed, to re-bucket them.  The paper offers three strategies with
different contention/clearing trade-offs, all implemented here behind one
interface:

* **simple array** -- one shared cursor advanced by fetch-and-add for every
  stored r-clique; compact, nothing to clear, but every insertion contends
  on the cursor;
* **list buffer** -- each of the P simulated threads owns a cursor into its
  private block of the output array, contending only when a block fills
  and a fresh one must be reserved; unused slots are filtered out at the
  end of the round;
* **hash table** -- a parallel hash table sized per round from the number
  of peeled r-cliques; no reservation contention at all, but the table
  must be cleared (work proportional to its capacity) every round.

First-touch detection (an r-clique enters ``U`` only on its first count
update of the round) is the caller's job --- the decomposition keeps a
per-cell round stamp --- so ``record`` is only called once per (cell, round).

Contention flows through a :class:`~repro.parallel.atomics.ContentionMeter`
settled by the caller at the end of each round, so the simple array's
serialized fetch-and-adds lengthen the simulated critical path exactly as
the paper describes.

Race checking: when the tracker carries a
:class:`~repro.sanitize.racecheck.RaceDetector`, every insertion
shadow-logs its accesses --- cursor reservations as mediated fetch-and-adds,
the reserved slot as a plain write (safe because reservation makes the slot
private), and the list buffer's per-thread state under a ``("thread", t)``
owner, since tasks multiplexed onto one simulated worker run sequentially.
"""

from __future__ import annotations

import numpy as np

from ..parallel.atomics import ContentionMeter
from ..parallel.hashtable import ParallelHashTable
from ..parallel.runtime import CostTracker

#: Simulated address of the shared cursor (arbitrary, distinct per purpose).
_CURSOR_ADDRESS = -1
_BLOCK_CURSOR_ADDRESS = -2


class SimpleArrayAggregator:
    """Section 5.5's first option: a flat array with one shared cursor."""

    name = "array"

    def __init__(self, capacity: int, threads: int = 1,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        del threads, buffer_size
        self._slots = np.zeros(max(1, capacity), dtype=np.int64)
        self._cursor = 0
        self.tracker = tracker
        self.meter = meter
        self._slot_base = None  # lazily race-detector-allocated

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        del peeled, update_estimate
        self._cursor = 0  # no clearing needed: the cursor bounds validity

    def record(self, cell: int, thread: int = 0) -> None:
        del thread
        detector = None
        if self.tracker is not None:
            self.tracker.add_work(1.0)
            self.tracker.add_atomic()
            detector = self.tracker.race_detector
        if self.meter is not None:
            self.meter.record(_CURSOR_ADDRESS)  # every insert hits the cursor
        if detector is not None:
            # fetch-and-add on the shared cursor, then a plain write to the
            # privately reserved slot.
            detector.log(_CURSOR_ADDRESS, write=True, atomic=True)
            if self._slot_base is None:
                self._slot_base = detector.allocate(
                    self._slots.size, "U_array")
            detector.log(self._slot_base + self._cursor, write=True)
        self._slots[self._cursor] = cell
        self._cursor += 1

    def finish_round(self) -> np.ndarray:
        return self._slots[:self._cursor].copy()


class ListBufferAggregator:
    """Section 5.5's list buffer: per-thread cursors over private blocks."""

    name = "list_buffer"

    def __init__(self, capacity: int, threads: int = 60,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        self.threads = max(1, threads)
        self.buffer_size = max(1, buffer_size)
        # Worst case: every thread wastes all but one slot of its last block.
        self._slots = np.full(
            max(1, capacity) + self.threads * self.buffer_size, -1,
            dtype=np.int64)
        self.tracker = tracker
        self.meter = meter
        self._slot_base = None  # lazily race-detector-allocated
        self._next_block = 0
        self._thread_cursor = np.zeros(self.threads, dtype=np.int64)
        self._thread_remaining = np.zeros(self.threads, dtype=np.int64)
        self._allocated = 0

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        del peeled, update_estimate
        # Reusing the buffer needs no clearing: resetting cursors suffices.
        self._next_block = 0
        self._thread_remaining.fill(0)
        self._allocated = 0

    def record(self, cell: int, thread: int = 0) -> None:
        thread %= self.threads
        detector = (self.tracker.race_detector
                    if self.tracker is not None else None)
        if self._thread_remaining[thread] == 0:
            # Reserve the next block with a fetch-and-add on the shared
            # block cursor -- the only contended operation.
            if self.meter is not None:
                self.meter.record(_BLOCK_CURSOR_ADDRESS)
            if self.tracker is not None:
                self.tracker.add_atomic()
            if detector is not None:
                detector.log(_BLOCK_CURSOR_ADDRESS, write=True, atomic=True)
            self._thread_cursor[thread] = self._next_block
            self._thread_remaining[thread] = self.buffer_size
            self._next_block += self.buffer_size
            self._allocated += self.buffer_size
        if self.tracker is not None:
            self.tracker.add_work(1.0)
        if detector is not None:
            # Slots inside a reserved block (and the cursors themselves)
            # belong to the worker thread, not the task: tasks sharing a
            # worker run sequentially, so attribute accesses to the worker.
            if self._slot_base is None:
                self._slot_base = detector.allocate(
                    self._slots.size, "U_list_buffer")
            owner = ("thread", int(thread))
            detector.log(self._slot_base + int(self._thread_cursor[thread]),
                         write=True, owner=owner)
        self._slots[self._thread_cursor[thread]] = cell
        self._thread_cursor[thread] += 1
        self._thread_remaining[thread] -= 1

    def finish_round(self) -> np.ndarray:
        # Parallel-filter unused slots out of the allocated prefix.
        used = self._slots[:self._next_block]
        if self.tracker is not None:
            self.tracker.add_work(float(self._allocated))
        result = used[used >= 0].copy()
        used.fill(-1)
        return result


class HashTableAggregator:
    """Section 5.5's hash table: contention-free inserts, per-round clears."""

    name = "hash"

    def __init__(self, capacity: int, threads: int = 1,
                 tracker: CostTracker | None = None,
                 meter: ContentionMeter | None = None,
                 buffer_size: int = 64):
        del threads, meter, buffer_size
        self.capacity = max(1, capacity)
        self.tracker = tracker
        self._table: ParallelHashTable | None = None
        self._slot_base = None  # lazily race-detector-allocated

    def begin_round(self, peeled: int, update_estimate: int) -> None:
        # Size the table from this round's peel: fewer peeled r-cliques
        # means less space and therefore less clearing work afterwards.
        hint = max(4, min(self.capacity, update_estimate))
        self._table = ParallelHashTable(hint, tracker=self.tracker)

    def record(self, cell: int, thread: int = 0) -> None:
        del thread
        if self.tracker is not None and self.tracker.race_detector is not None:
            # Hash-table inserts are CAS-mediated slot claims.
            if self._slot_base is None:
                self._slot_base = self.tracker.race_detector.allocate(
                    self.capacity, "U_hash")
            self.tracker.race_detector.log(
                self._slot_base + int(cell) % self.capacity,
                write=True, atomic=True)
        self._table.insert_or_add(cell, 0.0)

    def finish_round(self) -> np.ndarray:
        cells = np.sort(np.asarray(
            [k for k, _ in self._table.items()], dtype=np.int64))
        # The entire table must be cleared before reuse.
        self._table.clear()
        return cells


AGGREGATORS = {
    "array": SimpleArrayAggregator,
    "list_buffer": ListBufferAggregator,
    "hash": HashTableAggregator,
}


def make_aggregator(kind: str, capacity: int, threads: int = 60,
                    tracker: CostTracker | None = None,
                    meter: ContentionMeter | None = None,
                    buffer_size: int = 64):
    """Instantiate an update-aggregation strategy by name."""
    if kind not in AGGREGATORS:
        raise ValueError(
            f"unknown aggregation {kind!r}; options: {sorted(AGGREGATORS)}")
    return AGGREGATORS[kind](capacity, threads=threads, tracker=tracker,
                             meter=meter, buffer_size=buffer_size)
