"""repro: a Python reproduction of "Theoretically and Practically Efficient
Parallel Nucleus Decomposition" (Shi, Dhulipala, Shun; VLDB 2021).

Quickstart::

    from repro import load_dataset, arb_nucleus_decomp

    graph = load_dataset("dblp")
    result = arb_nucleus_decomp(graph, r=2, s=3)   # k-truss-style peeling
    print(result.max_core, result.rho)
    cores = result.as_dict()                        # edge -> trussness

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .core.config import NucleusConfig
from .core.decomp import NucleusResult, arb_nucleus_decomp
from .core.verify import brute_force_kcore, brute_force_ktruss, brute_force_nucleus
from .graph.csr import CSRGraph, DirectedGraph
from .graph.datasets import DATASETS, dataset_names, load_dataset
from .graph.generators import (erdos_renyi, figure1_graph, planted_partition,
                               rmat_graph)
from .graph.io import read_edge_list, write_edge_list
from .parallel.runtime import CostTracker, MachineModel

__version__ = "1.0.0"

__all__ = [
    "arb_nucleus_decomp", "NucleusResult", "NucleusConfig",
    "CSRGraph", "DirectedGraph",
    "load_dataset", "dataset_names", "DATASETS",
    "rmat_graph", "erdos_renyi", "planted_partition", "figure1_graph",
    "read_edge_list", "write_edge_list",
    "CostTracker", "MachineModel",
    "brute_force_nucleus", "brute_force_kcore", "brute_force_ktruss",
    "__version__",
]
