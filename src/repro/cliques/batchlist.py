"""The vectorized frontier clique-listing engine (``listing_engine="batch"``).

:mod:`repro.cliques.listing` runs REC-LIST-CLIQUES (Algorithm 1) as a
per-vertex Python recursion with one callback per discovered clique ---
correct, and the cost-model **oracle**, but interpreter-bound on the two
hottest call sites: the s-clique count of Algorithm 2 (lines 21--22) and
every UPDATE completion during peeling (line 17).  This module is the
iterative, level-synchronous equivalent: each recursion level lives as one
flat *frontier*

    ``bases``        -- an ``(k, d)`` int64 matrix of partial cliques,
    ``cand_values``  -- the k candidate sets, concatenated,
    ``cand_lens``    -- their lengths,

and a whole level is expanded at once with the row-keyed segment
intersection of :func:`repro.parallel.primitives.intersect_segments`.
Discovered cliques come out as ``(count, c)`` int64 blocks for array-aware
sinks (bulk table updates in the count phase, ``record_many``-style
consumers in UPDATE) instead of one Python tuple per clique.

The contract is the same one the batch *peeling* engine established
(docs/cost-model.md): bit-for-bit identical simulated costs versus the
scalar recursion --- work, span, rounds, atomics, contention, table
probes, and cache misses --- and the identical clique discovery order.
Level-synchronous expansion preserves discovery order because every level
keeps its frontier in parent order and appends children in candidate
order, so the leaves of the final level enumerate exactly the depth-first
preorder the recursion would visit.  All listing charges are
integer-valued (per-vertex ``out + 1`` roots, per-intersection ``min + 1``,
per-emission ``1``), so closed-form sums through
:meth:`~repro.parallel.runtime.CostTracker.add_work_int` equal the scalar
loop's per-call charges exactly; the one fractional charge on the counting
path (COUNT-FUNC's ``s·log₂s`` sort) is replayed with
:meth:`~repro.parallel.runtime.CostTracker.add_work_frac_repeated`.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from ..graph.csr import DirectedGraph
from ..parallel.primitives import intersect_segments, segment_gather
from ..parallel.runtime import CostTracker, _log2

#: Rows per sink block: bounds the sink's temporaries (e.g. the count
#: phase's ``rows x C(s,r) x r`` subset matrix), not the frontier itself.
DEFAULT_BLOCK_ROWS = 65536

#: Batch<->scalar parity contract, verified statically by ``repro lint
#: --strict`` (rule PAR007); see :data:`repro.core.batchpeel.PARLINT_PARITY`
#: for the format.  Regenerate fingerprints with ``repro lint --strict
#: --emit-registry`` after re-running the differential parity tests.
PARLINT_PARITY = {
    "expand_cliques": {
        "oracle": "repro.cliques.listing.rec_list_cliques",
        "fingerprint": {
            "add_cliques": 2,
            "add_work_int": 1,
            "intersect_segments": 1,
        },
    },
    "batch_list_cliques": {
        "oracle": "repro.cliques.listing.list_cliques",
        "fingerprint": {
            "add_cliques": 1,
            "add_span": 1,
            "add_work": 1,
            "add_work_int": 1,
            "expand_cliques": 1,
        },
    },
    "batch_count_phase": {
        "oracle": "repro.core.decomp._count_scalar",
        "fingerprint": {
            "add_work_frac_repeated": 1,
            "batch_list_cliques": 1,
        },
    },
}


def expand_cliques(dg: DirectedGraph, bases: np.ndarray,
                   cand_values: np.ndarray, cand_lens: np.ndarray,
                   levels: int, tracker: CostTracker | None = None
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Complete every base with ``levels`` more vertices, level by level.

    The batch form of calling :func:`~repro.cliques.listing.rec_list_cliques`
    once per base.  Returns ``(rows, base_of)``: the completed cliques as a
    ``(total, d + levels)`` matrix in exactly the scalar discovery order,
    and the originating base index of each row.  Charges bit-for-bit what
    the per-base recursions would.
    """
    bases = np.asarray(bases, dtype=np.int64)
    if bases.ndim != 2:
        raise ValueError("bases must be a (k, d) matrix")
    cand_values = np.asarray(cand_values, dtype=np.int64)
    cand_lens = np.asarray(cand_lens, dtype=np.int64)
    base_of = np.arange(bases.shape[0], dtype=np.int64)
    if levels <= 0:
        # rec_list_cliques(levels=0): emit each base as-is, one clique each.
        if tracker is not None:
            tracker.add_cliques(bases.shape[0])
        return bases.copy(), base_of

    out_width = bases.shape[1] + levels
    level = levels
    while level >= 2 and cand_lens.size:
        # Each candidate v of each frontier entry spawns one child whose
        # candidate set is intersect(cands, N+(v)) --- the pruning step of
        # Algorithm 1, for the whole level in one keyed merge.
        parent_of = np.repeat(np.arange(cand_lens.size, dtype=np.int64),
                              cand_lens)
        chosen = cand_values
        out_lens = dg.offsets[chosen + 1] - dg.offsets[chosen]
        parent_cands = segment_gather(
            cand_values, _segment_starts(cand_lens)[parent_of],
            cand_lens[parent_of])
        out_values = segment_gather(dg.targets, dg.offsets[chosen], out_lens)
        child_values, child_lens = intersect_segments(
            parent_cands, cand_lens[parent_of], out_values, out_lens, tracker)
        keep = child_lens >= level - 1
        bases = np.column_stack([bases[parent_of], chosen])[keep]
        base_of = base_of[parent_of][keep]
        cand_values = child_values[np.repeat(keep, child_lens)]
        cand_lens = child_lens[keep]
        level -= 1

    # Emission level: every remaining candidate completes one clique.
    total = int(cand_lens.sum())
    if tracker is not None:
        tracker.add_work_int(total)
        tracker.add_cliques(total)
    # If the frontier drained early (total == 0), bases may be narrower than
    # out_width; the empty result still carries the full clique width.
    rows = np.empty((total, out_width), dtype=np.int64)
    if total:
        rows[:, :-1] = np.repeat(bases, cand_lens, axis=0)
        rows[:, -1] = cand_values
    return rows, np.repeat(base_of, cand_lens)


def _segment_starts(lengths: np.ndarray) -> np.ndarray:
    starts = np.zeros(lengths.size, dtype=np.int64)
    if lengths.size:
        np.cumsum(lengths[:-1], out=starts[1:])
    return starts


def batch_list_cliques(dg: DirectedGraph, c: int,
                       tracker: CostTracker | None = None,
                       sink=None, block_rows: int = DEFAULT_BLOCK_ROWS) -> int:
    """List every c-clique of ``dg``; the batch form of ``list_cliques``.

    Discovered cliques are delivered to ``sink`` as ``(count, c)`` int64
    blocks in discovery order (``block_rows`` rows per block at most);
    with ``sink=None`` only the count is returned.  Simulated charges are
    bit-for-bit those of :func:`~repro.cliques.listing.list_cliques`.
    """
    if c < 1:
        raise ValueError("c must be at least 1")
    if tracker is not None:
        # Analytic span charge: c levels of intersections, log n span each.
        tracker.add_span(c * _log2(dg.n))
    if c == 1:
        if tracker is not None:
            tracker.add_work(float(dg.n))
            tracker.add_cliques(dg.n)
        if sink is not None:
            rows = np.arange(dg.n, dtype=np.int64)[:, np.newaxis]
            _emit_blocks(rows, sink, block_rows)
        return dg.n
    out_degs = dg.out_degrees
    if tracker is not None:
        # The root loop charges out.size + 1 per vertex before descending.
        tracker.add_work_int(int(out_degs.sum()) + dg.n)
    roots = np.flatnonzero(out_degs >= c - 1)
    cand_lens = out_degs[roots]
    cand_values = segment_gather(dg.targets, dg.offsets[roots], cand_lens)
    rows, _ = expand_cliques(dg, roots[:, np.newaxis], cand_values,
                             cand_lens, c - 1, tracker)
    if sink is not None:
        _emit_blocks(rows, sink, block_rows)
    return rows.shape[0]


def _emit_blocks(rows: np.ndarray, sink, block_rows: int) -> None:
    step = max(1, int(block_rows))
    for start in range(0, rows.shape[0], step):
        sink(rows[start:start + step])
    if rows.shape[0] == 0:
        sink(rows)


def batch_count_phase(dg: DirectedGraph, table, r: int, s: int,
                      relabeled: bool, tracker: CostTracker | None,
                      block_rows: int = DEFAULT_BLOCK_ROWS) -> int:
    """Algorithm 2's s-clique count (COUNT-FUNC, line 22), batched.

    Lists all s-cliques with the frontier engine and applies the
    ``C(s, r)`` per-clique count increments through
    :meth:`~repro.core.tables.CliqueTable.add_count_many`, whose charges
    and route-then-slot address stream are exactly those of one scalar
    ``add_count`` per subset.  Without relabeling, the scalar COUNT-FUNC
    charges ``s·log₂s`` per actually-unsorted tuple; the batch path
    replays those fractional charges with ``add_work_frac_repeated``.
    Returns the s-clique count.
    """
    comb_cols = np.asarray(list(combinations(range(s), r)), dtype=np.int64)
    sort_charge = s * _log2(s)

    def sink(rows: np.ndarray) -> None:
        if rows.shape[0] == 0:
            return
        if relabeled:
            ordered = rows
        else:
            ordered = np.sort(rows, axis=1)
            if tracker is not None:
                unsorted = int((ordered != rows).any(axis=1).sum())
                tracker.add_work_frac_repeated(sort_charge, unsorted)
        table.add_count_many(ordered[:, comb_cols].reshape(-1, r), 1.0)

    return batch_list_cliques(dg, s, tracker, sink=sink,
                              block_rows=block_rows)
