"""Clique counting conveniences built on REC-LIST-CLIQUES.

Per-vertex and per-edge counts are what the nucleus algorithm's special
cases consume: per-vertex triangle counts drive (1,2)/(1,3)-style
decompositions and per-edge triangle counts (edge *support*) drive k-truss,
including the PKT-family baselines.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph, DirectedGraph
from ..parallel.primitives import intersect_segments, segment_gather
from ..parallel.runtime import CostTracker
from .batchlist import batch_list_cliques
from .listing import list_cliques
from .orient import orient


def total_clique_count(graph: CSRGraph, c: int, method: str = "goodrich_pszona",
                       tracker: CostTracker | None = None,
                       engine: str = "scalar") -> int:
    """Number of c-cliques in an undirected graph."""
    if c == 1:
        return graph.n
    if c == 2:
        return graph.m
    dg, _ = orient(graph, method, tracker)
    if engine == "batch":
        return batch_list_cliques(dg, c, tracker)
    counter = [0]
    list_cliques(dg, c, lambda _clique: counter.__setitem__(0, counter[0] + 1),
                 tracker)
    return counter[0]


def per_vertex_clique_counts(graph: CSRGraph, c: int,
                             method: str = "goodrich_pszona",
                             tracker: CostTracker | None = None,
                             engine: str = "scalar") -> np.ndarray:
    """``out[v]`` = number of c-cliques containing vertex ``v``.

    This is the quantity ``ct_c(v)`` in the paper's appendix comparison with
    Sariyuce et al.'s bounds.  Each discovered clique increments ``c``
    per-vertex counters, charged as ``c`` work per clique (the callback
    used to run uncharged); the batch engine applies the same increments
    as one scatter per block with the identical bulk charge.
    """
    counts = np.zeros(graph.n, dtype=np.int64)
    if c == 1:
        counts[:] = 1
        return counts
    if c == 2:
        return graph.degrees.astype(np.int64)
    dg, _ = orient(graph, method, tracker)

    if engine == "batch":
        def sink(rows: np.ndarray) -> None:
            if tracker is not None:
                tracker.add_work_int(rows.size)
            np.add.at(counts, rows.reshape(-1), 1)

        batch_list_cliques(dg, c, tracker, sink=sink)
        return counts

    def bump(clique):
        if tracker is not None:
            tracker.add_work(float(len(clique)))
        for v in clique:
            counts[v] += 1

    list_cliques(dg, c, bump, tracker)
    return counts


def triangle_count(graph: CSRGraph, tracker: CostTracker | None = None) -> int:
    """Total number of triangles (3-cliques)."""
    return total_clique_count(graph, 3, tracker=tracker)


def edge_support(graph: CSRGraph, tracker: CostTracker | None = None,
                 dg: DirectedGraph | None = None) -> dict[tuple[int, int], int]:
    """Triangle count of each edge, keyed by ``(min(u,v), max(u,v))``.

    The k-truss baselines start from exactly this map.  Uses the directed
    node-iterator: for each directed edge (u, v), every common directed
    out-neighbor w closes the triangle {u, v, w} exactly once.

    Charging: one unit per undirected edge to initialize the support map,
    one ``min(|N+(u)|, |N+(v)|) + 1`` intersection per directed edge, and
    three support increments per triangle.  The inner loops run batched:
    all directed-edge intersections in one keyed merge
    (:func:`~repro.parallel.primitives.intersect_segments`) and the
    increments as one scatter over packed edge keys.
    """
    if dg is None:
        dg, _ = orient(graph, tracker=tracker)
    edges = graph.edges()  # (m, 2) with u < v
    m = edges.shape[0]
    if tracker is not None:
        # Initializing one support counter per edge.
        tracker.add_work_int(m)
    if m == 0:
        return {}
    n = graph.n
    edge_keys = edges[:, 0] * n + edges[:, 1]
    key_order = np.argsort(edge_keys, kind="stable")
    sorted_keys = edge_keys[key_order]

    # One intersection row per directed edge (u, v): N+(u) against N+(v).
    out_degs = dg.out_degrees
    u_of = np.repeat(np.arange(dg.n, dtype=np.int64), out_degs)
    v_of = dg.targets
    a_vals = segment_gather(dg.targets, dg.offsets[u_of], out_degs[u_of])
    b_vals = segment_gather(dg.targets, dg.offsets[v_of], out_degs[v_of])
    common, common_lens = intersect_segments(
        a_vals, out_degs[u_of], b_vals, out_degs[v_of], tracker)

    counts = np.zeros(m, dtype=np.int64)
    n_triangles = int(common_lens.sum())
    if n_triangles:
        if tracker is not None:
            # Three per-edge support increments per closed triangle.
            tracker.add_work_int(3 * n_triangles)
        tri_u = np.repeat(u_of, common_lens)
        tri_v = np.repeat(v_of, common_lens)
        tri_w = common
        keys = np.concatenate([
            np.minimum(tri_u, tri_v) * n + np.maximum(tri_u, tri_v),
            np.minimum(tri_u, tri_w) * n + np.maximum(tri_u, tri_w),
            np.minimum(tri_v, tri_w) * n + np.maximum(tri_v, tri_w)])
        np.add.at(counts, key_order[np.searchsorted(sorted_keys, keys)], 1)
    return {(int(u), int(v)): int(c)
            for (u, v), c in zip(edges, counts)}
