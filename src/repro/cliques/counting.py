"""Clique counting conveniences built on REC-LIST-CLIQUES.

Per-vertex and per-edge counts are what the nucleus algorithm's special
cases consume: per-vertex triangle counts drive (1,2)/(1,3)-style
decompositions and per-edge triangle counts (edge *support*) drive k-truss,
including the PKT-family baselines.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph, DirectedGraph
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker
from .listing import list_cliques
from .orient import orient


def total_clique_count(graph: CSRGraph, c: int, method: str = "goodrich_pszona",
                       tracker: CostTracker | None = None) -> int:
    """Number of c-cliques in an undirected graph."""
    if c == 1:
        return graph.n
    if c == 2:
        return graph.m
    dg, _ = orient(graph, method, tracker)
    counter = [0]
    list_cliques(dg, c, lambda _clique: counter.__setitem__(0, counter[0] + 1),
                 tracker)
    return counter[0]


def per_vertex_clique_counts(graph: CSRGraph, c: int,
                             method: str = "goodrich_pszona",
                             tracker: CostTracker | None = None) -> np.ndarray:
    """``out[v]`` = number of c-cliques containing vertex ``v``.

    This is the quantity ``ct_c(v)`` in the paper's appendix comparison with
    Sariyuce et al.'s bounds.
    """
    counts = np.zeros(graph.n, dtype=np.int64)
    if c == 1:
        counts[:] = 1
        return counts
    if c == 2:
        return graph.degrees.astype(np.int64)
    dg, _ = orient(graph, method, tracker)

    def bump(clique):
        for v in clique:
            counts[v] += 1

    list_cliques(dg, c, bump, tracker)
    return counts


def triangle_count(graph: CSRGraph, tracker: CostTracker | None = None) -> int:
    """Total number of triangles (3-cliques)."""
    return total_clique_count(graph, 3, tracker=tracker)


def edge_support(graph: CSRGraph, tracker: CostTracker | None = None,
                 dg: DirectedGraph | None = None) -> dict[tuple[int, int], int]:
    """Triangle count of each edge, keyed by ``(min(u,v), max(u,v))``.

    The k-truss baselines start from exactly this map.  Uses the directed
    node-iterator: for each directed edge (u, v), every common directed
    out-neighbor w closes the triangle {u, v, w} exactly once.
    """
    if dg is None:
        dg, _ = orient(graph, tracker=tracker)
    support: dict[tuple[int, int], int] = {
        (int(u), int(v)): 0 for u, v in graph.edges()}

    def canon(u: int, v: int) -> tuple[int, int]:
        return (u, v) if u < v else (v, u)

    for u in range(dg.n):
        out_u = dg.out_neighbors(u)
        for v in out_u:
            common = intersect_sorted(out_u, dg.out_neighbors(int(v)), tracker)
            for w in common:
                support[canon(u, int(v))] += 1
                support[canon(u, int(w))] += 1
                support[canon(int(v), int(w))] += 1
    return support
