"""Sampling-based approximate clique counting (after Eden et al. [23]).

The combinatorial lemma behind the paper's Theorem 4.2 (Lemma 4.1) comes
from Eden, Ron, and Seshadhri's work on *sublinear approximation* of
k-clique counts in low-arboricity graphs.  This module implements the
practical sampling estimator that lemma enables:

* orient the graph by an O(alpha)-orientation;
* sample directed edges uniformly; for each, count the cliques completed
  inside the (small, O(alpha)-bounded) out-neighborhood intersection;
* scale by the sampling rate.

Each c-clique is assigned to exactly one directed edge (its two earliest
vertices in orientation order --- the same charging scheme as Lemma 4.1's
proof), so the estimator is unbiased; its variance shrinks with the
sample count.  Useful when exact counting is too slow and a quick estimate
of clique density is needed (e.g. to choose a feasible (r,s)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph, DirectedGraph
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker
from .listing import rec_list_cliques
from .orient import orient


@dataclass
class CliqueEstimate:
    """An approximate clique count with its sampling metadata."""

    c: int
    estimate: float
    samples: int
    total_edges: int

    @property
    def sample_fraction(self) -> float:
        return self.samples / self.total_edges if self.total_edges else 1.0


def _cliques_assigned_to_edge(dg: DirectedGraph, u: int, v: int,
                              c: int, tracker=None) -> int:
    """Number of c-cliques whose two orientation-earliest vertices are
    (u, v): completions drawn from N+(u) /\\ N+(v)."""
    common = intersect_sorted(dg.out_neighbors(u), dg.out_neighbors(v),
                              tracker)
    if c == 2:
        return 1
    if common.size < c - 2:
        return 0
    count = [0]
    rec_list_cliques(dg, common, c - 2, (u, v),
                     lambda _clique: count.__setitem__(0, count[0] + 1),
                     tracker)
    return count[0]


def approximate_clique_count(graph: CSRGraph, c: int,
                             sample_fraction: float = 0.2,
                             seed: int = 0,
                             tracker: CostTracker | None = None
                             ) -> CliqueEstimate:
    """Unbiased sampling estimate of the number of c-cliques.

    ``sample_fraction`` of the directed edges are inspected (at least one);
    ``sample_fraction >= 1`` degenerates to exact counting via the same
    edge-charging scheme.
    """
    if c < 2:
        raise ValueError("c must be at least 2")
    if not 0 < sample_fraction:
        raise ValueError("sample_fraction must be positive")
    dg, _ = orient(graph, "degeneracy", tracker)
    sources = np.repeat(np.arange(dg.n, dtype=np.int64),
                        np.diff(dg.offsets))
    targets = dg.targets
    m = targets.size
    if m == 0:
        return CliqueEstimate(c, 0.0, 0, 0)
    if sample_fraction >= 1.0:
        chosen = np.arange(m)
    else:
        rng = np.random.default_rng(seed)
        k = max(1, int(round(sample_fraction * m)))
        chosen = rng.choice(m, size=k, replace=False)
    total = 0
    for idx in chosen:
        total += _cliques_assigned_to_edge(
            dg, int(sources[idx]), int(targets[idx]), c, tracker)
    scale = m / chosen.size
    return CliqueEstimate(c, total * scale, int(chosen.size), int(m))


def estimate_feasible_s(graph: CSRGraph, r: int, budget: float,
                        s_max: int = 7, sample_fraction: float = 0.2,
                        seed: int = 0) -> int:
    """Largest s <= s_max whose estimated s-clique count fits a budget.

    A planning helper: nucleus decomposition work grows with the s-clique
    count, so a user can pick the deepest feasible s before committing to
    an expensive run.  Returns at least r + 1.
    """
    best = r + 1
    for s in range(r + 1, s_max + 1):
        estimate = approximate_clique_count(graph, s, sample_fraction, seed)
        if estimate.estimate > budget and s > r + 1:
            break
        best = s
    return best
