"""REC-LIST-CLIQUES: the recursive parallel clique-listing algorithm.

This is Algorithm 1 of the paper (after Shi et al. [60]): grow a clique one
vertex at a time, maintaining the candidate set ``I`` of vertices adjacent
to everything chosen so far, pruning ``I`` by intersecting with each new
vertex's directed out-neighborhood.  Because the graph is O(alpha)-oriented,
each intersection costs O(alpha) work, giving O(m * alpha^{c-2}) work for
listing all c-cliques, with O(c log n) span.

Two entry points:

* :func:`list_cliques` -- list every c-clique of an oriented graph (used to
  enumerate r-cliques and to count s-cliques, Algorithm 2 lines 21--22);
* :func:`rec_list_cliques` -- the raw recursion, also called by ``UPDATE``
  (Algorithm 2 line 17) to complete s-cliques from a peeled r-clique.

The callback ``f`` receives each discovered clique as a tuple of vertex ids
in *discovery order*, which is orientation-rank order.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import DirectedGraph
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker, _log2


def rec_list_cliques(dg: DirectedGraph, candidates: np.ndarray, levels: int,
                     base: tuple, f, tracker: CostTracker | None = None) -> int:
    """Complete cliques from ``base`` using ``levels`` more vertices.

    ``candidates`` holds the vertices adjacent (in the undirected sense,
    and ahead in the orientation where applicable) to everything in
    ``base``; each completion extends ``base`` with ``levels`` vertices
    drawn from successive out-neighborhood intersections.  Returns the
    number of cliques emitted.
    """
    if levels <= 0:
        f(base)
        if tracker is not None:
            tracker.add_cliques(1)
        return 1
    if levels == 1:
        if tracker is not None:
            tracker.add_work(float(candidates.size))
            tracker.add_cliques(int(candidates.size))
        for v in candidates:
            f(base + (int(v),))
        return int(candidates.size)
    total = 0
    for v in candidates:
        pruned = intersect_sorted(candidates, dg.out_neighbors(int(v)), tracker)
        if pruned.size >= levels - 1:
            total += rec_list_cliques(dg, pruned, levels - 1, base + (int(v),),
                                      f, tracker)
    return total


def list_cliques(dg: DirectedGraph, c: int, f,
                 tracker: CostTracker | None = None) -> int:
    """List every c-clique of the oriented graph ``dg``; returns the count.

    Equivalent to ``REC-LIST-CLIQUES(DG, V, c, {}, f)`` but skips the
    trivial first-level intersection (``V`` intersected with an
    out-neighborhood is just the out-neighborhood).
    """
    if c < 1:
        raise ValueError("c must be at least 1")
    if tracker is not None:
        # Analytic span charge: c levels of intersections, log n span each.
        tracker.add_span(c * _log2(dg.n))
    if c == 1:
        total = dg.n
        if tracker is not None:
            tracker.add_work(float(dg.n))
            tracker.add_cliques(dg.n)
        for v in range(dg.n):
            f((v,))
        return total
    total = 0
    for v in range(dg.n):
        out = dg.out_neighbors(v)
        if tracker is not None:
            tracker.add_work(float(out.size) + 1.0)
        if out.size >= c - 1:
            total += rec_list_cliques(dg, out, c - 1, (v,), f, tracker)
    return total


def count_cliques(dg: DirectedGraph, c: int,
                  tracker: CostTracker | None = None) -> int:
    """Count c-cliques without materializing them."""
    counter = [0]

    def bump(_clique):
        counter[0] += 1

    list_cliques(dg, c, bump, tracker)
    return counter[0]


def collect_cliques(dg: DirectedGraph, c: int,
                    tracker: CostTracker | None = None) -> np.ndarray:
    """All c-cliques as an (count, c) array, rows in discovery order.

    Each row's vertices appear in orientation-rank order (ascending ids iff
    the graph was relabeled by rank, Section 5.4).
    """
    rows: list[tuple] = []
    list_cliques(dg, c, rows.append, tracker)
    if not rows:
        return np.zeros((0, c), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)
