"""REC-LIST-CLIQUES: the recursive parallel clique-listing algorithm.

This is Algorithm 1 of the paper (after Shi et al. [60]): grow a clique one
vertex at a time, maintaining the candidate set ``I`` of vertices adjacent
to everything chosen so far, pruning ``I`` by intersecting with each new
vertex's directed out-neighborhood.  Because the graph is O(alpha)-oriented,
each intersection costs O(alpha) work, giving O(m * alpha^{c-2}) work for
listing all c-cliques, with O(c log n) span.

Two entry points:

* :func:`list_cliques` -- list every c-clique of an oriented graph (used to
  enumerate r-cliques and to count s-cliques, Algorithm 2 lines 21--22);
* :func:`rec_list_cliques` -- the raw recursion, also called by ``UPDATE``
  (Algorithm 2 line 17) to complete s-cliques from a peeled r-clique.

The callback ``f`` receives each discovered clique as a tuple of vertex ids
in *discovery order*, which is orientation-rank order.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import DirectedGraph
from ..parallel.primitives import intersect_sorted
from ..parallel.runtime import CostTracker, _log2


def rec_list_cliques(dg: DirectedGraph, candidates: np.ndarray, levels: int,
                     base: tuple, f, tracker: CostTracker | None = None) -> int:
    """Complete cliques from ``base`` using ``levels`` more vertices.

    ``candidates`` holds the vertices adjacent (in the undirected sense,
    and ahead in the orientation where applicable) to everything in
    ``base``; each completion extends ``base`` with ``levels`` vertices
    drawn from successive out-neighborhood intersections.  Returns the
    number of cliques emitted.
    """
    if levels <= 0:
        f(base)
        if tracker is not None:
            tracker.add_cliques(1)
        return 1
    if levels == 1:
        if tracker is not None:
            tracker.add_work(float(candidates.size))
            tracker.add_cliques(int(candidates.size))
        for v in candidates:
            f(base + (int(v),))
        return int(candidates.size)
    total = 0
    for v in candidates:
        pruned = intersect_sorted(candidates, dg.out_neighbors(int(v)), tracker)
        if pruned.size >= levels - 1:
            total += rec_list_cliques(dg, pruned, levels - 1, base + (int(v),),
                                      f, tracker)
    return total


def list_cliques(dg: DirectedGraph, c: int, f,
                 tracker: CostTracker | None = None) -> int:
    """List every c-clique of the oriented graph ``dg``; returns the count.

    Equivalent to ``REC-LIST-CLIQUES(DG, V, c, {}, f)`` but skips the
    trivial first-level intersection (``V`` intersected with an
    out-neighborhood is just the out-neighborhood).
    """
    if c < 1:
        raise ValueError("c must be at least 1")
    if tracker is not None:
        # Analytic span charge: c levels of intersections, log n span each.
        tracker.add_span(c * _log2(dg.n))
    if c == 1:
        total = dg.n
        if tracker is not None:
            tracker.add_work(float(dg.n))
            tracker.add_cliques(dg.n)
        for v in range(dg.n):
            f((v,))
        return total
    total = 0
    for v in range(dg.n):
        out = dg.out_neighbors(v)
        if tracker is not None:
            tracker.add_work(float(out.size) + 1.0)
        if out.size >= c - 1:
            total += rec_list_cliques(dg, out, c - 1, (v,), f, tracker)
    return total


def count_cliques(dg: DirectedGraph, c: int,
                  tracker: CostTracker | None = None,
                  engine: str = "scalar") -> int:
    """Count c-cliques without materializing them."""
    if engine == "batch":
        from .batchlist import batch_list_cliques
        return batch_list_cliques(dg, c, tracker)
    counter = [0]

    def bump(_clique):
        counter[0] += 1

    list_cliques(dg, c, bump, tracker)
    return counter[0]


class _CliqueBuffer:
    """A preallocated (cap, c) int64 buffer grown by amortized doubling.

    The accumulation structure behind :func:`collect_cliques` (the Python
    list of tuples it replaced re-boxed every vertex id and then paid a
    full conversion pass).  Growth copies are real simulated work --- the
    same amortized-doubling charge the batch peeling engine's
    ``SimpleArrayAggregator`` fix established --- so each doubling charges
    ``rows_copied * c`` work.  The scalar append path and the batch block
    path charge identically: doublings depend only on how many rows have
    arrived, never on the arrival grain.
    """

    __slots__ = ("_rows", "_count", "_c", "_tracker")

    _INITIAL_CAP = 256

    def __init__(self, c: int, tracker: CostTracker | None) -> None:
        self._rows = np.empty((self._INITIAL_CAP, c), dtype=np.int64)
        self._count = 0
        self._c = c
        self._tracker = tracker

    def _grow_to(self, needed: int) -> None:
        cap = self._rows.shape[0]
        while cap < needed:
            if self._tracker is not None:
                # The doubling copy moves every occupied row once.
                self._tracker.add_work_int(cap * self._c)
            cap *= 2
        if cap != self._rows.shape[0]:
            grown = np.empty((cap, self._c), dtype=np.int64)
            grown[:self._count] = self._rows[:self._count]
            self._rows = grown

    def append(self, clique) -> None:
        if self._count == self._rows.shape[0]:
            self._grow_to(self._count + 1)
        self._rows[self._count] = clique
        self._count += 1

    def extend(self, block: np.ndarray) -> None:
        end = self._count + block.shape[0]
        if end > self._rows.shape[0]:
            self._grow_to(end)
        self._rows[self._count:end] = block
        self._count = end

    def finish(self) -> np.ndarray:
        return self._rows[:self._count].copy()


def collect_cliques(dg: DirectedGraph, c: int,
                    tracker: CostTracker | None = None,
                    engine: str = "scalar") -> np.ndarray:
    """All c-cliques as an (count, c) array, rows in discovery order.

    Each row's vertices appear in orientation-rank order (ascending ids iff
    the graph was relabeled by rank, Section 5.4).  With ``engine="batch"``
    the frontier engine (:mod:`repro.cliques.batchlist`) fills the buffer
    block-wise; simulated charges are identical either way.
    """
    buffer = _CliqueBuffer(c, tracker)
    if engine == "batch":
        from .batchlist import batch_list_cliques
        batch_list_cliques(dg, c, tracker, sink=buffer.extend)
    else:
        list_cliques(dg, c, buffer.append, tracker)
    return buffer.finish()
