"""Clique machinery: orientations, listing, counting, key encoding."""

from .approx import (CliqueEstimate, approximate_clique_count,
                     estimate_feasible_s)
from .counting import (edge_support, per_vertex_clique_counts,
                       total_clique_count, triangle_count)
from .encode import CliqueEncoder, KeyWidthError, min_levels
from .listing import collect_cliques, count_cliques, list_cliques, rec_list_cliques
from .orient import (arboricity_bounds, barenboim_elkin_order, degeneracy,
                     degeneracy_order, degree_order, goodrich_pszona_order,
                     identity_order, orient, orientation_rank)

__all__ = [
    "orient", "orientation_rank", "degeneracy", "degeneracy_order",
    "goodrich_pszona_order", "barenboim_elkin_order", "degree_order",
    "identity_order",
    "arboricity_bounds",
    "list_cliques", "rec_list_cliques", "count_cliques", "collect_cliques",
    "total_clique_count", "per_vertex_clique_counts", "triangle_count",
    "edge_support",
    "CliqueEncoder", "KeyWidthError", "min_levels",
    "approximate_clique_count", "estimate_feasible_s", "CliqueEstimate",
]
