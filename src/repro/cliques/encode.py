"""Packing cliques into integer hash-table keys.

The clique table ``T`` keys its last level by (r - l + 1)-cliques, which
must be "concatenated into a key" (paper Section 5.1).  We pack each vertex
id into a fixed-width bit field, most-significant vertex first, so the
numeric order of keys equals the lexicographic order of cliques.

The top bit of every key is reserved to distinguish empty hash cells
(Section 5.3), so at most 63 bits are available; :func:`min_levels` computes
how many table levels that forces for a given (n, r) --- reproducing the
paper's observation that one-level tables are infeasible for large ``r``.
"""

from __future__ import annotations

import numpy as np

MAX_KEY_BITS = 63


class CliqueEncoder:
    """Packs ascending vertex tuples from a graph of ``n`` vertices."""

    def __init__(self, n: int, width: int):
        if width < 1:
            raise ValueError("width must be at least 1")
        self.n = n
        self.width = width
        self.bits_per_vertex = max(1, (max(2, n) - 1).bit_length())
        if width * self.bits_per_vertex > MAX_KEY_BITS:
            raise KeyWidthError(n, width, self.bits_per_vertex)

    def encode(self, vertices) -> int:
        """Pack ``vertices`` (ascending) into one integer key."""
        key = 0
        for v in vertices:
            key = (key << self.bits_per_vertex) | int(v)
        return key

    def decode(self, key: int) -> tuple[int, ...]:
        """Unpack a key produced by :meth:`encode`."""
        mask = (1 << self.bits_per_vertex) - 1
        out = []
        for _ in range(self.width):
            out.append(key & mask)
            key >>= self.bits_per_vertex
        return tuple(reversed(out))

    def encode_many(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`encode` over rows of an ``(m, width)`` array.

        Returns a ``uint64`` key per row; numeric key order equals
        lexicographic clique order, exactly as for :meth:`encode`.
        """
        cols = np.asarray(vertices, dtype=np.uint64)
        if cols.ndim != 2 or cols.shape[1] != self.width:
            raise ValueError(f"expected (m, {self.width}) vertex rows")
        bits = np.uint64(self.bits_per_vertex)
        keys = np.zeros(cols.shape[0], dtype=np.uint64)
        for c in range(self.width):
            keys = (keys << bits) | cols[:, c]
        return keys

    def decode_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decode`: ``(m,)`` keys -> ``(m, width)`` int64."""
        keys = np.asarray(keys, dtype=np.uint64)
        bits = np.uint64(self.bits_per_vertex)
        mask = np.uint64((1 << self.bits_per_vertex) - 1)
        out = np.empty((keys.size, self.width), dtype=np.int64)
        for c in range(self.width - 1, -1, -1):
            out[:, c] = (keys & mask).astype(np.int64)
            keys = keys >> bits
        return out


class KeyWidthError(ValueError):
    """Raised when a clique does not fit in a 63-bit key at this level count."""

    def __init__(self, n: int, width: int, bits: int):
        self.n, self.width, self.bits = n, width, bits
        super().__init__(
            f"cannot pack {width} vertices of a {n}-vertex graph into "
            f"{MAX_KEY_BITS} bits ({width}x{bits} bits needed); "
            f"use a table with more levels")


def min_levels(n: int, r: int) -> int:
    """Fewest table levels representing r-cliques of an n-vertex graph.

    An l-level table keys its last level by (r - l + 1) vertices; this
    returns the smallest l in [1, r] whose last-level key fits in 63 bits.
    """
    bits = max(1, (max(2, n) - 1).bit_length())
    for levels in range(1, r + 1):
        if (r - levels + 1) * bits <= MAX_KEY_BITS:
            return levels
    raise KeyWidthError(n, 1, bits)
