"""Low out-degree (O(alpha)) orientation algorithms.

The clique-listing algorithm (paper Algorithm 1) first directs the graph so
every out-degree is O(alpha), where alpha is the arboricity; intersections
on out-neighborhoods then cost O(alpha) instead of O(max degree).  The
paper uses the work-efficient parallel orientation algorithms of Shi et al.
[60]; we implement all the orderings the evaluation mentions:

* :func:`degeneracy_order` -- the exact Matula--Beck peeling order (serial,
  O(m)); out-degrees are bounded by the degeneracy d <= 2*alpha - 1.
* :func:`goodrich_pszona_order` -- parallel: each round peels the epsilon
  fraction of lowest-degree vertices; O(log n) rounds, O(m) work.
* :func:`barenboim_elkin_order` -- parallel: each round peels every vertex
  whose induced degree is at most (2 + epsilon) * (2m'/n'); O(log n)
  rounds, O(m) work.
* :func:`degree_order` -- the simple non-decreasing-degree ordering used by
  several baselines.

Each returns a *rank* permutation; edges directed from lower to higher rank
give the orientation (see :class:`repro.graph.csr.DirectedGraph`).
"""

from __future__ import annotations

import math

import numpy as np

from ..graph.csr import CSRGraph, DirectedGraph
from ..parallel.runtime import CostTracker, _log2


def degree_order(graph: CSRGraph, tracker: CostTracker | None = None) -> np.ndarray:
    """Rank vertices by (degree, id) ascending."""
    if tracker is not None:
        tracker.add_work(float(graph.n))
        tracker.add_span(_log2(graph.n))
    order = np.lexsort((np.arange(graph.n), graph.degrees))
    rank = np.empty(graph.n, dtype=np.int64)
    rank[order] = np.arange(graph.n)
    return rank


def identity_order(graph: CSRGraph, tracker: CostTracker | None = None
                   ) -> np.ndarray:
    """Rank vertices by id: an *arbitrary* acyclic orientation.

    This is what clique enumeration without a low-out-degree orientation
    amounts to (Sariyuce et al.'s counting subroutine); out-degrees are
    not bounded by O(alpha), so intersections cost more --- the paper's
    Section 6.3 subroutine-swap experiment measures exactly this gap
    (up to 3.04x, median 1.03x).
    """
    if tracker is not None:
        tracker.add_work(float(graph.n))
        tracker.add_span(1.0)
    return np.arange(graph.n, dtype=np.int64)


def degeneracy_order(graph: CSRGraph, tracker: CostTracker | None = None) -> np.ndarray:
    """Exact degeneracy (smallest-last) ordering via Matula--Beck peeling.

    O(n + m) work; inherently sequential (span = work), which is why the
    parallel algorithms below exist.
    """
    n = graph.n
    degree = graph.degrees.copy()
    max_deg = int(degree.max()) if n else 0
    # Classic bucket queue over degrees.
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = np.zeros(n, dtype=bool)
    rank = np.empty(n, dtype=np.int64)
    cursor = 0
    for position in range(n):
        v = -1
        while v < 0:
            while cursor <= max_deg and not buckets[cursor]:
                cursor += 1
            candidate = buckets[cursor].pop()
            # Skip stale entries left behind by degree decrements.
            if not removed[candidate] and degree[candidate] == cursor:
                v = candidate
        rank[v] = position
        removed[v] = True
        # Decrement the live neighbors in bulk (same per-neighbor push
        # order and cursor trajectory as the element-wise loop).
        nbrs = graph.neighbors(v)
        live = nbrs[~removed[nbrs]]
        if live.size:
            degree[live] -= 1
            dropped = degree[live]
            dmin = int(dropped.min())
            if dmin < cursor:
                cursor = dmin
            for u, d in zip(live.tolist(), dropped.tolist()):
                buckets[d].append(u)
    if tracker is not None:
        tracker.add_work(float(graph.n + 2 * graph.m))
        tracker.add_span(float(graph.n + 2 * graph.m))
    return rank


def _peeling_rounds_order(graph: CSRGraph, choose_peel, tracker: CostTracker | None):
    """Shared round-based peeling: ``choose_peel`` picks each round's set."""
    n = graph.n
    degree = graph.degrees.astype(np.int64).copy()
    alive = np.ones(n, dtype=bool)
    rank = np.empty(n, dtype=np.int64)
    assigned = 0
    remaining = n
    rounds = 0
    while remaining > 0:
        rounds += 1
        peel = choose_peel(degree, alive, remaining)
        if peel.size == 0:  # guard against stalls on adversarial inputs
            peel = np.flatnonzero(alive)[
                np.argsort(degree[alive], kind="stable")[:max(1, remaining // 2)]]
        # Vertices peeled in the same round are ranked by id (deterministic).
        rank[peel] = assigned + np.arange(peel.size)
        assigned += peel.size
        alive[peel] = False
        remaining -= peel.size
        touched = 0
        for v in peel:
            nbrs = graph.neighbors(v)
            live = nbrs[alive[nbrs]]
            degree[live] -= 1
            touched += nbrs.size
        if tracker is not None:
            tracker.add_work(float(touched + n))
            tracker.add_span(_log2(n))
            tracker.add_round()
    return rank, rounds


def goodrich_pszona_order(graph: CSRGraph, epsilon: float = 1.0,
                          tracker: CostTracker | None = None) -> np.ndarray:
    """Parallel Goodrich--Pszona ordering.

    Each round peels the ``epsilon/(2+epsilon)`` fraction of vertices with
    the smallest induced degree; O(log n) rounds w.h.p., out-degree
    O((2+epsilon) * alpha).
    """
    fraction = epsilon / (2.0 + epsilon)

    def choose(degree, alive, remaining):
        count = max(1, int(math.ceil(fraction * remaining)))
        live_ids = np.flatnonzero(alive)
        order = np.argsort(degree[live_ids], kind="stable")
        return live_ids[order[:count]]

    rank, _ = _peeling_rounds_order(graph, choose, tracker)
    return rank


def barenboim_elkin_order(graph: CSRGraph, epsilon: float = 1.0,
                          tracker: CostTracker | None = None) -> np.ndarray:
    """Parallel Barenboim--Elkin ordering.

    Each round peels all vertices with induced degree at most
    ``(2 + epsilon) * (2 m' / n')`` where m', n' are the surviving counts;
    O(log n) rounds, out-degree O((2+epsilon) * alpha).
    """

    def choose(degree, alive, remaining):
        live_ids = np.flatnonzero(alive)
        live_deg = degree[live_ids]
        avg = live_deg.sum() / max(1, remaining)
        return live_ids[live_deg <= (2.0 + epsilon) * avg]

    rank, _ = _peeling_rounds_order(graph, choose, tracker)
    return rank


_ORDERINGS = {
    "degeneracy": degeneracy_order,
    "goodrich_pszona": goodrich_pszona_order,
    "barenboim_elkin": barenboim_elkin_order,
    "degree": degree_order,
    "identity": identity_order,
}


def orientation_rank(graph: CSRGraph, method: str = "goodrich_pszona",
                     tracker: CostTracker | None = None) -> np.ndarray:
    """The rank permutation for a named orientation algorithm."""
    if method not in _ORDERINGS:
        raise ValueError(
            f"unknown orientation {method!r}; options: {sorted(_ORDERINGS)}")
    return _ORDERINGS[method](graph, tracker=tracker) if method != "degeneracy" \
        else degeneracy_order(graph, tracker)


def orient(graph: CSRGraph, method: str = "goodrich_pszona",
           tracker: CostTracker | None = None) -> tuple[DirectedGraph, np.ndarray]:
    """Orient ``graph`` with the named algorithm; returns (DG, rank)."""
    rank = orientation_rank(graph, method, tracker)
    return DirectedGraph.orient(graph, rank), rank


def degeneracy(graph: CSRGraph) -> int:
    """The degeneracy d of the graph (max out-degree under the exact
    smallest-last orientation); satisfies alpha <= d <= 2*alpha - 1."""
    rank = degeneracy_order(graph)
    return DirectedGraph.orient(graph, rank).max_out_degree


def arboricity_bounds(graph: CSRGraph) -> tuple[float, int]:
    """(lower, upper) bounds on the arboricity: m/(n-1) and the degeneracy."""
    lower = graph.m / max(1, graph.n - 1)
    return lower, max(1, degeneracy(graph))
