# Convenience targets for the nucleus-decomposition reproduction.

PYTHON ?= python3

.PHONY: install test bench benchmarks examples experiments lint clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	$(PYTHON) tools/generate_experiments.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
