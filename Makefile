# Convenience targets for the nucleus-decomposition reproduction.

PYTHON ?= python3

.PHONY: install test bench profile benchmarks examples experiments lint \
	race-static sanitize clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Perf trajectory: run the pinned suite, the baseline (competitor)
# suite, the hierarchy suite and the sharded suite under both engines
# (plus the batch listing engine), gate against the committed baseline,
# and refresh BENCH_nucleus.json (commit it when a perf PR moves the
# numbers on purpose).
bench:
	PYTHONPATH=src $(PYTHON) tools/bench_trajectory.py \
		--engine-gate --min-listing-speedup 3 \
		--min-baseline-speedup 3 \
		--min-hierarchy-speedup 3 \
		--min-comm-reduction 1.3 \
		--compare BENCH_nucleus.json --output BENCH_nucleus.json

profile:
	PYTHONPATH=src $(PYTHON) -m repro.cli profile --dataset dblp \
		--r 2 --s 3 -o trace_dblp_2_3.json

benchmarks:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

experiments:
	$(PYTHON) tools/generate_experiments.py

lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests; \
	else \
		echo "ruff not installed; skipping style checks"; \
	fi
	PYTHONPATH=src $(PYTHON) -m repro.sanitize.parlint src/repro
	PYTHONPATH=src $(PYTHON) -m repro.cli lint --strict \
		--baseline parlint-baseline.json src/repro

# The static race rules (PAR009-PAR011) run as part of the strict
# analyzer; this target mirrors `make lint`'s strict invocation under a
# name that matches what it gates.
race-static:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint --strict \
		--baseline parlint-baseline.json src/repro

sanitize:
	PYTHONPATH=src $(PYTHON) -m repro.cli sanitize

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
